#include "harness/experiment.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <thread>

#include "common/check.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/agent_base.h"
#include "core/policy_agents.h"
#include "core/query.h"
#include "core/scoop_base_agent.h"
#include "core/scoop_node_agent.h"
#include "metrics/message_stats.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "sim/network.h"
#include "sim/sharded_engine.h"
#include "sim/topology.h"

namespace scoop::harness {

namespace {

using core::AgentBase;
using core::AgentConfig;
using core::Query;

sim::Topology MakeTopology(const ExperimentConfig& config, uint64_t seed) {
  if (config.preset == TopologyPreset::kTestbed) {
    sim::TestbedTopologyOptions opts;
    opts.num_nodes = config.num_nodes;
    opts.seed = seed;
    return sim::Topology::MakeTestbed(opts);
  }
  if (config.preset == TopologyPreset::kGrid) {
    sim::GridTopologyOptions opts;
    opts.num_nodes = config.num_nodes;
    opts.seed = seed;
    return sim::Topology::MakeGrid(opts);
  }
  sim::RandomTopologyOptions opts;
  opts.num_nodes = config.num_nodes;
  opts.seed = seed;
  return sim::Topology::MakeRandom(opts);
}

AgentConfig MakeAgentConfig(const ExperimentConfig& config, NodeId self,
                            metrics::Telemetry* telemetry, obs::TraceSink* trace,
                            workload::DataSource* source) {
  AgentConfig agent;
  agent.self = self;
  agent.base = 0;
  agent.num_nodes = config.num_nodes;
  agent.sample_interval = config.sample_interval;
  agent.summary_interval = config.summary_interval;
  agent.remap_interval = config.remap_interval;
  agent.sampling_start = config.stabilization;
  agent.summary_history_window = config.summary_history_window;
  agent.summary_history_epoch = config.summary_history_epoch;
  agent.max_batch = config.max_batch;
  agent.enable_neighbor_shortcut = config.enable_neighbor_shortcut;
  agent.enable_descendant_routing = config.enable_descendant_routing;
  agent.suppression_similarity = config.suppression_similarity;
  agent.builder = config.builder;
  agent.hash_domain = source->domain();
  agent.fault_orphan_rehoming = config.fault.orphan_rehoming;
  agent.fault_send_retry_max = config.fault.send_retry_max;
  agent.fault_send_retry_backoff = config.fault.send_retry_backoff;
  agent.fault_query_reissue_max = config.fault.query_reissue_max;
  agent.telemetry = telemetry;
  agent.trace = trace;
  agent.sample_fn = [source](NodeId node, SimTime now) { return source->Next(node, now); };
  return agent;
}

/// Writes `text` to `path`, logging (not failing) on I/O errors so a bad
/// trace path never kills a finished trial.
void WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    SCOOP_LOG(kWarning) << "cannot open " << path << " for writing";
    return;
  }
  out << text;
  if (!out.good()) {
    SCOOP_LOG(kWarning) << "short write to " << path;
  }
}

/// Resolves the per-packet-type wire-byte counters ("wire.bytes.<type>").
/// All null when metrics are off, so the transmit observer stays a single
/// pointer test per packet.
std::array<uint64_t*, kNumPacketTypes> WireByteCounters(obs::MetricsRegistry* registry) {
  std::array<uint64_t*, kNumPacketTypes> ctrs{};
  if (registry == nullptr) return ctrs;
  for (int t = 0; t < kNumPacketTypes; ++t) {
    std::string name = "wire.bytes.";
    name += PacketTypeName(static_cast<PacketType>(t));
    ctrs[static_cast<size_t>(t)] = registry->Counter(name);
  }
  return ctrs;
}

/// Folds one profiler's buckets into the result's perf fields. The
/// profiler must already be stopped at the end of its run loop (the shard
/// thread or the sequential RunUntil), so post-run work -- trace export,
/// result collection -- never pollutes the buckets.
void AddProfile(ExperimentResult* r, obs::SimProfiler* profiler) {
  if (profiler == nullptr) return;
  r->profile_queue_seconds += profiler->Seconds(obs::SimProfiler::kQueue);
  r->profile_radio_seconds += profiler->Seconds(obs::SimProfiler::kRadio);
  r->profile_agent_seconds += profiler->Seconds(obs::SimProfiler::kAgent);
  r->profile_shard_sync_seconds += profiler->Seconds(obs::SimProfiler::kShardSync);
  r->profile_other_seconds += profiler->Seconds(obs::SimProfiler::kOther);
}

/// Everything needed to issue queries against whichever base agent the
/// policy uses.
struct BaseHandle {
  AgentBase* agent = nullptr;
  std::function<uint32_t(const Query&)> issue;
};

/// Installs one base agent (node 0) plus num_nodes-1 node agents through
/// `set_app(id, app)`, pulling each agent's telemetry and trace sinks from
/// `telemetry_for(id)` / `trace_for(id)` (one global sink for the
/// sequential engine, the owning shard's sink for the sharded one).
template <typename BaseT, typename NodeT, typename SetApp, typename TelemetryFor,
          typename TraceFor>
BaseHandle InstallPolicy(const ExperimentConfig& config, SetApp&& set_app,
                         TelemetryFor&& telemetry_for, TraceFor&& trace_for,
                         workload::DataSource* source) {
  BaseHandle handle;
  auto base = std::make_unique<BaseT>(
      MakeAgentConfig(config, 0, telemetry_for(0), trace_for(0), source));
  auto* base_ptr = base.get();
  handle.agent = base_ptr;
  handle.issue = [base_ptr](const Query& q) { return base_ptr->IssueQuery(q); };
  set_app(0, std::move(base));
  for (int i = 1; i < config.num_nodes; ++i) {
    NodeId id = static_cast<NodeId>(i);
    set_app(id, std::make_unique<NodeT>(
                    MakeAgentConfig(config, id, telemetry_for(id), trace_for(id), source)));
  }
  return handle;
}

template <typename SetApp, typename TelemetryFor, typename TraceFor>
BaseHandle InstallAgentsGeneric(const ExperimentConfig& config, SetApp set_app,
                                TelemetryFor telemetry_for, TraceFor trace_for,
                                workload::DataSource* source) {
  switch (config.policy) {
    case Policy::kScoop:
      return InstallPolicy<core::ScoopBaseAgent, core::ScoopNodeAgent>(
          config, set_app, telemetry_for, trace_for, source);
    case Policy::kLocal:
      return InstallPolicy<core::LocalBaseAgent, core::LocalNodeAgent>(
          config, set_app, telemetry_for, trace_for, source);
    case Policy::kBase:
      return InstallPolicy<core::BasePolicyBaseAgent, core::BasePolicyNodeAgent>(
          config, set_app, telemetry_for, trace_for, source);
    case Policy::kHashSim:
      return InstallPolicy<core::HashBaseAgent, core::HashNodeAgent>(
          config, set_app, telemetry_for, trace_for, source);
    case Policy::kHashAnalytical:
      SCOOP_CHECK(false);  // Handled by HashAnalysisAsResult, not simulation.
  }
  return {};
}

BaseHandle InstallAgents(sim::Network* network, const ExperimentConfig& config,
                         metrics::Telemetry* telemetry, obs::TraceSink* trace,
                         workload::DataSource* source) {
  return InstallAgentsGeneric(
      config,
      [network](NodeId id, std::unique_ptr<sim::App> app) {
        network->SetApp(id, std::move(app));
      },
      [telemetry](NodeId) { return telemetry; }, [trace](NodeId) { return trace; },
      source);
}

/// The two engine hooks QueryDriver needs, so one driver serves both the
/// sequential Network and the sharded engine (where its events run on the
/// shard that owns the basestation).
struct DriverOps {
  std::function<SimTime()> now;
  std::function<void(SimTime, SmallCallback)> schedule_at;
};

/// Generates the §6 query workload: every query_interval, a value-range
/// query over 1-5% of the domain, about the recent past.
class QueryDriver {
 public:
  QueryDriver(DriverOps ops, const ExperimentConfig& config, BaseHandle handle,
              ValueRange domain, uint64_t seed)
      : ops_(std::move(ops)),
        config_(config),
        handle_(std::move(handle)),
        domain_(domain),
        rng_(MixSeed(seed, 0x9E44)) {}

  void Start() {
    if (!config_.queries_enabled) return;
    ScheduleNext(config_.stabilization + config_.query_interval);
  }

  double AvgPctNodesQueried() const {
    return issued_ == 0 ? 0.0 : pct_sum_ / static_cast<double>(issued_);
  }

 private:
  void ScheduleNext(SimTime at) {
    if (at > config_.duration - Seconds(2)) return;
    ops_.schedule_at(at, [this, at] {
      IssueOne();
      // Burst mode: the remaining burst_size-1 queries follow at
      // burst-spacing offsets (burst_size == 1 schedules nothing extra, so
      // the steady workload's event sequence is untouched).
      for (int k = 1; k < config_.query_burst_size; ++k) {
        SimTime burst_at = at + k * config_.query_burst_spacing;
        if (burst_at > config_.duration - Seconds(2)) break;
        ops_.schedule_at(burst_at, [this] { IssueOne(); });
      }
      ScheduleNext(at + config_.query_interval);
    });
  }

  void IssueOne() {
    SimTime now = ops_.now();
    Query query;
    query.time_lo = std::max<SimTime>(0, now - config_.query_history_window);
    query.time_hi = now;
    if (config_.query_mode == ExperimentConfig::QueryMode::kNodeList) {
      // §5.5: "a user can query values from one or more specific nodes".
      int pool = config_.num_nodes - 1;
      int count = std::clamp(
          static_cast<int>(std::lround(config_.node_list_fraction * pool)), 1, pool);
      std::vector<NodeId> all;
      for (int i = 1; i < config_.num_nodes; ++i) all.push_back(static_cast<NodeId>(i));
      rng_.Shuffle(all.begin(), all.end());
      query.explicit_nodes.assign(all.begin(), all.begin() + count);
    } else {
      int64_t domain_size = static_cast<int64_t>(domain_.hi) - domain_.lo + 1;
      double frac =
          config_.query_width_lo +
          rng_.UniformDouble() * (config_.query_width_hi - config_.query_width_lo);
      int64_t width = std::max<int64_t>(1, static_cast<int64_t>(frac * domain_size));
      int64_t start_max = domain_size - width;
      Value lo = domain_.lo + static_cast<Value>(rng_.UniformInt(0, start_max));
      query.ranges.push_back(ValueRange{lo, lo + static_cast<Value>(width) - 1});
    }
    uint32_t id = handle_.issue(query);
    (void)id;
    ++issued_;
    // Figure 4's x-axis: how many nodes the planner decided to ask, read
    // off the telemetry delta this query caused.
    const metrics::Telemetry* t = handle_.agent->config().telemetry;
    if (t != nullptr) {
      double delta = static_cast<double>(t->query_targets_total - last_targets_total_);
      last_targets_total_ = t->query_targets_total;
      pct_sum_ += delta / static_cast<double>(config_.num_nodes - 1);
    }
  }

  DriverOps ops_;
  ExperimentConfig config_;
  BaseHandle handle_;
  ValueRange domain_;
  Rng rng_;
  uint64_t issued_ = 0;
  double pct_sum_ = 0;
  uint64_t last_targets_total_ = 0;
};

/// Builds the trial's FaultPlan, folding the legacy failure_* knobs in as
/// crash-stop waves (identical victim selection and timing to the historic
/// BuildFailureWaves).
fault::FaultPlan BuildTrialFaultPlan(const ExperimentConfig& config,
                                     const sim::Topology& topology, uint64_t seed) {
  fault::LegacyCrashWaves legacy;
  legacy.fraction = config.node_failure_fraction;
  legacy.at = config.failure_time;
  legacy.wave_count = config.failure_wave_count;
  legacy.wave_interval = config.failure_wave_interval;
  return fault::BuildFaultPlan(config.fault, legacy, topology, config.num_nodes, seed);
}

/// True when the trial has any fault machinery on: scheduled events, link
/// windows, or agent-side degradation knobs. Gates the fault counters and
/// gauges so fault-free runs export exactly the metrics they always did.
bool FaultActive(const ExperimentConfig& config, const fault::FaultPlan& plan) {
  return plan.any() || config.fault.orphan_rehoming ||
         config.fault.send_retry_max > 0 || config.fault.query_reissue_max > 0;
}

/// Per-sink observability for fault events: counters on the PR 7 metrics
/// grid plus `fault.*` trace instants. All members null = off; recording
/// is branch-on-null, so fault application is identical with obs on/off.
struct FaultObs {
  obs::TraceSink* trace = nullptr;
  uint64_t* crash = nullptr;
  uint64_t* reboot = nullptr;
  uint64_t* link_down = nullptr;
  uint64_t* partition = nullptr;

  void Resolve(obs::MetricsRegistry* registry) {
    if (registry == nullptr) return;
    crash = registry->Counter("fault.crash");
    reboot = registry->Counter("fault.reboot");
    link_down = registry->Counter("fault.link_down");
    partition = registry->Counter("fault.partition");
  }
};

const char* FaultInstantName(fault::FaultKind kind) {
  switch (kind) {
    case fault::FaultKind::kRadioDown:
    case fault::FaultKind::kCrash:
      return "fault.crash";
    case fault::FaultKind::kRadioUp:
      return "fault.radio_up";
    case fault::FaultKind::kReboot:
      return "fault.reboot";
    case fault::FaultKind::kPromote:
      return "fault.promote";
    case fault::FaultKind::kDemote:
      return "fault.demote";
    case fault::FaultKind::kMarkLinkDown:
      return "fault.link_down";
    case fault::FaultKind::kMarkPartition:
      return "fault.partition";
  }
  return "fault.?";
}

void RecordFaultObs(FaultObs* obs, const fault::FaultEvent& ev, SimTime now) {
  switch (ev.kind) {
    case fault::FaultKind::kRadioDown:
    case fault::FaultKind::kCrash:
      if (obs->crash != nullptr) ++*obs->crash;
      break;
    case fault::FaultKind::kReboot:
      if (obs->reboot != nullptr) ++*obs->reboot;
      break;
    case fault::FaultKind::kMarkLinkDown:
      if (obs->link_down != nullptr) ++*obs->link_down;
      break;
    case fault::FaultKind::kMarkPartition:
      if (obs->partition != nullptr) ++*obs->partition;
      break;
    default:
      break;  // kRadioUp/kPromote/kDemote: trace-only.
  }
  if (obs->trace != nullptr) {
    obs->trace->Instant(now, FaultInstantName(ev.kind), obs::TraceCat::kFault,
                        ev.node, "kind", static_cast<uint64_t>(ev.kind));
  }
}

/// Applies one fault event on the sequential engine. Radio state flips
/// before the agent hook runs, so OnCrash/OnReboot observe the radio the
/// way a real mote's firmware would (down while crashed, up at reboot).
void ApplySequentialFault(sim::Network* network, const fault::FaultEvent& ev) {
  sim::App* app = network->app(ev.node);
  switch (ev.kind) {
    case fault::FaultKind::kRadioDown:
      network->SetNodeAlive(ev.node, false);
      break;
    case fault::FaultKind::kRadioUp:
      network->SetNodeAlive(ev.node, true);
      break;
    case fault::FaultKind::kCrash:
      network->SetNodeAlive(ev.node, false);
      if (app != nullptr) app->OnCrash(network->context(ev.node));
      break;
    case fault::FaultKind::kReboot:
      network->SetNodeAlive(ev.node, true);
      if (app != nullptr) app->OnReboot(network->context(ev.node));
      break;
    case fault::FaultKind::kPromote:
      if (app != nullptr) app->OnRootPromote(network->context(ev.node), true);
      break;
    case fault::FaultKind::kDemote:
      if (app != nullptr) app->OnRootPromote(network->context(ev.node), false);
      break;
    case fault::FaultKind::kMarkLinkDown:
    case fault::FaultKind::kMarkPartition:
      break;  // The link channel applies the window; this is obs-only.
  }
}

/// Post-run metric collection shared by the sequential and sharded trial
/// paths. `processed` is the engine's total executed-event count.
ExperimentResult CollectResult(const ExperimentConfig& config,
                               const metrics::MessageStats& stats,
                               const metrics::Telemetry& telemetry,
                               double avg_pct_nodes_queried, AgentBase* base_agent,
                               uint64_t processed) {
  ExperimentResult r;
  for (int t = 0; t < kNumPacketTypes; ++t) {
    const metrics::TypeCounters& c = stats.ByType(static_cast<PacketType>(t));
    r.sent_by_type[static_cast<size_t>(t)] = static_cast<double>(c.sent);
    r.retransmissions += static_cast<double>(c.retransmissions);
    r.mac_drops += static_cast<double>(c.dropped);
  }
  r.total = static_cast<double>(stats.TotalSent());
  r.total_excl_beacons = static_cast<double>(stats.TotalSentExclBeacons());

  r.storage_success = telemetry.StorageSuccessRate();
  r.owner_hit_rate = telemetry.OwnerHitRate();
  r.query_success = telemetry.QuerySuccessRate();
  r.summary_delivery = telemetry.SummaryDeliveryRate();
  r.readings_lost = static_cast<double>(telemetry.readings_lost);
  r.readings_orphaned = static_cast<double>(telemetry.readings_orphaned);
  r.readings_rehomed = static_cast<double>(telemetry.readings_rehomed);
  r.queries_reissued = static_cast<double>(telemetry.queries_reissued);
  r.parent_losses = static_cast<double>(telemetry.parent_losses);
  r.send_retries = static_cast<double>(telemetry.send_retries);
  r.readings_produced = static_cast<double>(telemetry.readings_produced);
  r.queries_issued = static_cast<double>(telemetry.queries_issued);
  r.tuples_returned = static_cast<double>(telemetry.tuples_returned);
  r.indices_built = static_cast<double>(telemetry.indices_built);
  r.indices_disseminated = static_cast<double>(telemetry.indices_disseminated);
  r.indices_suppressed = static_cast<double>(telemetry.indices_suppressed);
  r.avg_pct_nodes_queried = avg_pct_nodes_queried;

  if (config.policy == Policy::kScoop) {
    auto* scoop_base = dynamic_cast<core::ScoopBaseAgent*>(base_agent);
    if (scoop_base != nullptr && !scoop_base->index_history().empty()) {
      const core::StorageIndex& index = scoop_base->index_history().back().index;
      int64_t domain =
          static_cast<int64_t>(index.domain_hi()) - index.domain_lo() + 1;
      // O(entries) walk over the index's coalesced ranges; equivalent to
      // (and regression-tested against) one Lookup per domain value.
      r.base_owned_fraction =
          static_cast<double>(index.OwnedValueCount(0)) / static_cast<double>(domain);
    }
  }

  r.root_sent = static_cast<double>(stats.SentBy(0));
  r.root_received = static_cast<double>(stats.ReceivedBy(0));
  double sum_sent = 0;
  uint64_t max_sent = 0;
  for (int i = 1; i < config.num_nodes; ++i) {
    uint64_t s = stats.SentBy(static_cast<NodeId>(i));
    sum_sent += static_cast<double>(s);
    max_sent = std::max(max_sent, s);
  }
  r.avg_node_sent = sum_sent / std::max(1, config.num_nodes - 1);
  r.max_node_sent = static_cast<double>(max_sent);

  // Energy: radio traffic dominates (§2.1). The lifetime comparison uses
  // workload bytes (tx + addressed rx, beacons excluded): the always-on
  // listening cost is identical across policies and would only dilute the
  // per-policy differences the paper reports.
  metrics::EnergyModel energy(config.energy);
  double sum_lifetime = 0;
  for (int i = 1; i < config.num_nodes; ++i) {
    double joules = energy.RadioEnergyJ(stats.WorkloadBytesBy(static_cast<NodeId>(i)), 0);
    sum_lifetime += energy.LifetimeDays(joules, config.duration);
  }
  r.avg_node_lifetime_days = sum_lifetime / std::max(1, config.num_nodes - 1);
  double root_joules = energy.RadioEnergyJ(stats.WorkloadBytesBy(0), 0);
  r.root_lifetime_days = energy.LifetimeDays(root_joules, config.duration);
  r.sim_events = static_cast<double>(processed);
  return r;
}

}  // namespace

std::string ExpandObsPath(const std::string& path, const std::string& suffix) {
  if (path.empty()) return path;
  size_t slash = path.find_last_of('/');
  size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    std::string out = path;
    out += suffix;
    return out;
  }
  std::string out = path.substr(0, dot);
  out += suffix;
  out += path.substr(dot);
  return out;
}

const char* TopologyPresetName(TopologyPreset preset) {
  switch (preset) {
    case TopologyPreset::kTestbed:
      return "testbed";
    case TopologyPreset::kRandom:
      return "random";
    case TopologyPreset::kGrid:
      return "grid";
  }
  return "?";
}

const char* PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kScoop:
      return "scoop";
    case Policy::kLocal:
      return "local";
    case Policy::kBase:
      return "base";
    case Policy::kHashAnalytical:
      return "hash";
    case Policy::kHashSim:
      return "hash-sim";
  }
  return "?";
}

ExperimentResult RunTrial(const ExperimentConfig& config, uint64_t seed) {
  if (config.shards != 1) return RunShardedTrial(config, seed, ResolvedShards(config));
  SCOOP_CHECK(config.policy != Policy::kHashAnalytical);
  SCOOP_CHECK_GE(config.num_nodes, 2);
  SCOOP_CHECK_LE(config.num_nodes, kMaxSupportedNodes);

  sim::Topology topology = MakeTopology(config, seed);
  sim::NetworkOptions net_opts;
  net_opts.seed = seed;
  net_opts.queue_impl = config.queue;
  sim::Network network(topology, net_opts);
  ScopedLogClock log_clock(
      [](const void* ctx) { return static_cast<const sim::Network*>(ctx)->now(); },
      &network);

  // Observability sinks (each null unless requested; every hook they feed
  // is branch-on-null, and none of them draws randomness or schedules
  // events, so results are identical with them on or off).
  std::unique_ptr<obs::TraceSink> trace;
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::unique_ptr<obs::SimProfiler> profiler;
  if (!config.trace_out.empty()) trace = std::make_unique<obs::TraceSink>();
  if (!config.metrics_out.empty()) registry = std::make_unique<obs::MetricsRegistry>();
  if (config.profile) profiler = std::make_unique<obs::SimProfiler>();
  network.radio().EnableObservability(trace.get(), registry.get(), profiler.get());
  network.queue().set_profiler(profiler.get());

  metrics::MessageStats stats(config.num_nodes);
  std::array<uint64_t*, kNumPacketTypes> wire_ctrs = WireByteCounters(registry.get());
  const std::array<uint64_t*, kNumPacketTypes>* wire = &wire_ctrs;
  network.set_transmit_observer(
      [&stats, wire](NodeId src, const Packet& pkt, bool retx) {
        stats.OnTransmit(src, pkt, retx);
        uint64_t* ctr = (*wire)[static_cast<size_t>(pkt.hdr.type)];
        if (ctr != nullptr) *ctr += static_cast<uint64_t>(pkt.WireSize());
      });
  network.set_deliver_observer(
      [&stats](NodeId dst, const Packet& pkt, bool addressed) {
        stats.OnDeliver(dst, pkt, addressed);
      });
  network.set_drop_observer(
      [&stats](NodeId src, const Packet& pkt, sim::DropReason) { stats.OnDrop(src, pkt); });

  metrics::Telemetry telemetry;
  std::unique_ptr<workload::DataSource> source = workload::MakeDataSource(
      config.source, config.source_options, topology.positions(), seed);
  BaseHandle handle = InstallAgents(&network, config, &telemetry, trace.get(), source.get());

  // Per-query success timeline, appended in close order on the engine
  // thread (the churn integration test reads degradation/recovery off it).
  std::vector<ExperimentResult::QueryTimelinePoint> timeline;
  handle.agent->on_query_complete = [&timeline](const core::QueryOutcome& o) {
    timeline.push_back(ExperimentResult::QueryTimelinePoint{
        ToSeconds(o.closed_at), o.targets, o.responders});
  };

  DriverOps ops;
  ops.now = [&network] { return network.now(); };
  ops.schedule_at = [&network](SimTime at, SmallCallback fn) {
    network.queue().ScheduleAt(at, std::move(fn));
  };
  QueryDriver queries(std::move(ops), config, handle, source->domain(), seed);
  network.Start();
  queries.Start();

  // Fault injection: the trial's FaultPlan (legacy crash-stop waves plus
  // the typed fault.* machinery), grouped into one scheduled lambda per
  // distinct instant -- the same schedule shape the legacy per-wave loop
  // had, so fault-free and crash-stop-only runs stay byte-identical.
  fault::FaultPlan plan = BuildTrialFaultPlan(config, topology, seed);
  FaultObs fobs;
  fobs.trace = trace.get();
  if (FaultActive(config, plan)) fobs.Resolve(registry.get());
  if (plan.channel.active()) network.SetFaultChannel(&plan.channel);
  for (size_t i = 0; i < plan.events.size();) {
    size_t j = i;
    while (j < plan.events.size() && plan.events[j].at == plan.events[i].at) ++j;
    std::vector<fault::FaultEvent> group(
        plan.events.begin() + static_cast<ptrdiff_t>(i),
        plan.events.begin() + static_cast<ptrdiff_t>(j));
    network.queue().ScheduleAt(plan.events[i].at,
                               [&network, &fobs, group = std::move(group)] {
                                 for (const fault::FaultEvent& ev : group) {
                                   ApplySequentialFault(&network, ev);
                                   RecordFaultObs(&fobs, ev, network.now());
                                 }
                               });
    i = j;
  }

  // Attribution starts at the run loop; setup (topology, agent install)
  // belongs to no bucket.
  if (profiler != nullptr) profiler->Restart();

  if (registry != nullptr && FaultActive(config, plan)) {
    // Degradation counters live on the agents' shared Telemetry; surfacing
    // them as gauges puts them on the same sampled grid as everything else
    // without threading registry pointers through the agent layer.
    metrics::Telemetry* tel = &telemetry;
    registry->Gauge("data.orphaned", [tel] { return tel->readings_orphaned; });
    registry->Gauge("data.rehomed", [tel] { return tel->readings_rehomed; });
    registry->Gauge("query.reissued", [tel] { return tel->queries_reissued; });
    registry->Gauge("route.parent_lost", [tel] { return tel->parent_losses; });
  }
  if (registry != nullptr && config.metrics_interval > 0) {
    sim::EventQueue* q = &network.queue();
    registry->Gauge("queue.depth", [q] { return static_cast<uint64_t>(q->size()); });
    registry->Gauge("queue.processed", [q] { return q->processed(); });
    // Per-tier split of the two-tier queue (wheel L0/L1 + heap spill).
    registry->Gauge("queue.wheel.absorbed", [q] { return q->wheel_absorbed(); });
    registry->Gauge("queue.wheel.spilled", [q] { return q->wheel_spilled(); });
    registry->Gauge("queue.wheel.l0_depth",
                    [q] { return static_cast<uint64_t>(q->wheel_l0_size()); });
    registry->Gauge("queue.wheel.l1_depth",
                    [q] { return static_cast<uint64_t>(q->wheel_l1_size()); });
    registry->Gauge("queue.heap_depth",
                    [q] { return static_cast<uint64_t>(q->heap_tier_size()); });
    obs::Histogram* depth_hist = registry->Hist("queue.occupancy");
    // Slice the run on the sampling grid. EventQueue::RunUntil(t) advances
    // the clock to exactly t, so slicing is semantics-preserving and each
    // sample sees precisely the events at or before its grid point.
    for (SimTime t = config.metrics_interval; t <= config.duration;
         t += config.metrics_interval) {
      network.RunUntil(t);
      depth_hist->Record(q->size());
      registry->Sample(t);
    }
  }
  network.RunUntil(config.duration);
  if (profiler != nullptr) profiler->Stop();

  if (trace != nullptr) {
    WriteTextFile(config.trace_out, obs::ExportChromeTrace({trace.get()}));
  }
  if (registry != nullptr) {
    WriteTextFile(config.metrics_out, obs::ExportMetricsJsonLines({registry.get()}));
  }
  SCOOP_LOG(kInfo) << "trial done: policy=" << PolicyName(config.policy)
                   << " seed=" << seed << " events=" << network.queue().processed();

  ExperimentResult r = CollectResult(config, stats, telemetry,
                                     queries.AvgPctNodesQueried(), handle.agent,
                                     network.queue().processed());
  r.query_timeline = std::move(timeline);
  r.queue_wheel_absorbed = static_cast<double>(network.queue().wheel_absorbed());
  r.queue_wheel_spilled = static_cast<double>(network.queue().wheel_spilled());
  AddProfile(&r, profiler.get());
  return r;
}

int ResolvedShards(const ExperimentConfig& config) {
  if (config.shards != 0) return std::clamp(config.shards, 1, 64);
  unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(hw == 0 ? 1 : static_cast<int>(hw), 1, 8);
}

ExperimentResult RunShardedTrial(const ExperimentConfig& config, uint64_t seed, int shards) {
  SCOOP_CHECK(config.policy != Policy::kHashAnalytical);
  SCOOP_CHECK_GE(config.num_nodes, 2);
  SCOOP_CHECK_LE(config.num_nodes, kMaxSupportedNodes);
  SCOOP_CHECK_GE(shards, 1);

  sim::ShardedEngineOptions opts;
  opts.seed = seed;
  opts.shards = shards;
  opts.queue_impl = config.queue;
  opts.partition = config.partition;
  sim::ShardedEngine engine(MakeTopology(config, seed), opts);
  const int k = engine.num_shards();

  // One MessageStats/Telemetry per shard -- observers and agents touch only
  // their own shard's sink, so shards never contend -- merged after the run.
  // Every counter is a sum, so the merged totals are K-invariant even
  // though the split across sinks is not.
  std::vector<metrics::MessageStats> shard_stats;
  shard_stats.reserve(static_cast<size_t>(k));
  for (int s = 0; s < k; ++s) shard_stats.emplace_back(config.num_nodes);
  std::vector<metrics::Telemetry> shard_telemetry(static_cast<size_t>(k));

  // Observability sinks follow the same one-per-shard rule as the stats
  // sinks above: each shard's instrumentation fires on its own thread, so
  // shards never contend; export merges them afterwards.
  std::vector<std::unique_ptr<obs::TraceSink>> traces(static_cast<size_t>(k));
  std::vector<std::unique_ptr<obs::MetricsRegistry>> registries(static_cast<size_t>(k));
  std::vector<std::unique_ptr<obs::SimProfiler>> profilers(static_cast<size_t>(k));
  std::vector<std::array<uint64_t*, kNumPacketTypes>> wire_ctrs(static_cast<size_t>(k));
  for (int s = 0; s < k; ++s) {
    if (!config.trace_out.empty()) {
      traces[static_cast<size_t>(s)] = std::make_unique<obs::TraceSink>();
    }
    if (!config.metrics_out.empty()) {
      registries[static_cast<size_t>(s)] = std::make_unique<obs::MetricsRegistry>();
    }
    if (config.profile) {
      profilers[static_cast<size_t>(s)] = std::make_unique<obs::SimProfiler>();
    }
    engine.EnableObservability(s, traces[static_cast<size_t>(s)].get(),
                               registries[static_cast<size_t>(s)].get(),
                               profilers[static_cast<size_t>(s)].get(),
                               config.metrics_interval);
    wire_ctrs[static_cast<size_t>(s)] =
        WireByteCounters(registries[static_cast<size_t>(s)].get());
  }

  for (int s = 0; s < k; ++s) {
    metrics::MessageStats* ms = &shard_stats[static_cast<size_t>(s)];
    const std::array<uint64_t*, kNumPacketTypes>* wire = &wire_ctrs[static_cast<size_t>(s)];
    engine.set_transmit_observer(s, [ms, wire](NodeId src, const Packet& pkt, bool retx) {
      ms->OnTransmit(src, pkt, retx);
      uint64_t* ctr = (*wire)[static_cast<size_t>(pkt.hdr.type)];
      if (ctr != nullptr) *ctr += static_cast<uint64_t>(pkt.WireSize());
    });
    engine.set_deliver_observer(s, [ms](NodeId dst, const Packet& pkt, bool addressed) {
      ms->OnDeliver(dst, pkt, addressed);
    });
    engine.set_drop_observer(s, [ms](NodeId src, const Packet& pkt, sim::DropReason) {
      ms->OnDrop(src, pkt);
    });
  }

  std::unique_ptr<workload::DataSource> source = workload::MakeKeyedDataSource(
      config.source, config.source_options, engine.topology().positions(), seed);
  BaseHandle handle = InstallAgentsGeneric(
      config,
      [&engine](NodeId id, std::unique_ptr<sim::App> app) { engine.SetApp(id, std::move(app)); },
      [&engine, &shard_telemetry](NodeId id) {
        return &shard_telemetry[static_cast<size_t>(engine.shard_of(id))];
      },
      [&engine, &traces](NodeId id) {
        return traces[static_cast<size_t>(engine.shard_of(id))].get();
      },
      source.get());

  // Per-query success timeline; on_query_complete fires on the base
  // shard's thread only, so a plain vector is race-free.
  std::vector<ExperimentResult::QueryTimelinePoint> timeline;
  handle.agent->on_query_complete = [&timeline](const core::QueryOutcome& o) {
    timeline.push_back(ExperimentResult::QueryTimelinePoint{
        ToSeconds(o.closed_at), o.targets, o.responders});
  };

  DriverOps ops;
  ops.now = [&engine] { return engine.DriverNow(); };
  ops.schedule_at = [&engine](SimTime at, SmallCallback fn) {
    engine.ScheduleDriver(at, std::move(fn));
  };
  QueryDriver queries(std::move(ops), config, handle, source->domain(), seed);

  // Fault events go through the engine's pre-Start fault channel, which
  // feeds every shard's AliveFloor (the lookahead floor that makes aborts
  // conservative). Scheduled in plan order, so same-time events keep the
  // plan's deterministic order on each shard for every K. Observability
  // lands in the victim's shard sinks (the callback runs on that thread).
  fault::FaultPlan plan = BuildTrialFaultPlan(config, engine.topology(), seed);
  if (plan.channel.active()) engine.SetFaultChannel(&plan.channel);
  std::vector<FaultObs> fault_obs(static_cast<size_t>(k));
  for (int s = 0; s < k; ++s) {
    fault_obs[static_cast<size_t>(s)].trace = traces[static_cast<size_t>(s)].get();
    if (FaultActive(config, plan)) {
      fault_obs[static_cast<size_t>(s)].Resolve(registries[static_cast<size_t>(s)].get());
    }
  }
  for (const fault::FaultEvent& ev : plan.events) {
    FaultObs* fo = &fault_obs[static_cast<size_t>(engine.shard_of(ev.node))];
    engine.ScheduleFault(ev.at, ev.node, [&engine, fo, ev] {
      switch (ev.kind) {
        case fault::FaultKind::kRadioDown:
          engine.FaultSetAlive(ev.node, false);
          break;
        case fault::FaultKind::kRadioUp:
          engine.FaultSetAlive(ev.node, true);
          break;
        case fault::FaultKind::kCrash:
          engine.FaultSetAlive(ev.node, false);
          engine.FaultCrash(ev.node);
          break;
        case fault::FaultKind::kReboot:
          engine.FaultSetAlive(ev.node, true);
          engine.FaultReboot(ev.node);
          break;
        case fault::FaultKind::kPromote:
          engine.FaultRootPromote(ev.node, true);
          break;
        case fault::FaultKind::kDemote:
          engine.FaultRootPromote(ev.node, false);
          break;
        case fault::FaultKind::kMarkLinkDown:
        case fault::FaultKind::kMarkPartition:
          break;  // The link channel applies the window; this is obs-only.
      }
      RecordFaultObs(fo, ev, ev.at);
    });
  }
  if (FaultActive(config, plan)) {
    for (int s = 0; s < k; ++s) {
      obs::MetricsRegistry* reg = registries[static_cast<size_t>(s)].get();
      if (reg == nullptr) continue;
      metrics::Telemetry* tel = &shard_telemetry[static_cast<size_t>(s)];
      reg->Gauge("data.orphaned", [tel] { return tel->readings_orphaned; });
      reg->Gauge("data.rehomed", [tel] { return tel->readings_rehomed; });
      reg->Gauge("query.reissued", [tel] { return tel->queries_reissued; });
      reg->Gauge("route.parent_lost", [tel] { return tel->parent_losses; });
    }
  }

  ScopedLogClock log_clock(
      [](const void* ctx) {
        return static_cast<const sim::ShardedEngine*>(ctx)->DriverNow();
      },
      &engine);
  engine.Start();
  queries.Start();
  engine.RunUntil(config.duration);

  metrics::MessageStats stats = std::move(shard_stats[0]);
  for (int s = 1; s < k; ++s) stats.MergeFrom(shard_stats[static_cast<size_t>(s)]);
  metrics::Telemetry telemetry = shard_telemetry[0];
  for (int s = 1; s < k; ++s) telemetry.MergeFrom(shard_telemetry[static_cast<size_t>(s)]);

  if (!config.trace_out.empty()) {
    std::vector<const obs::TraceSink*> sinks;
    for (const auto& t : traces) sinks.push_back(t.get());
    WriteTextFile(config.trace_out, obs::ExportChromeTrace(sinks));
  }
  if (!config.metrics_out.empty()) {
    std::vector<const obs::MetricsRegistry*> regs;
    for (const auto& r : registries) regs.push_back(r.get());
    WriteTextFile(config.metrics_out, obs::ExportMetricsJsonLines(regs));
  }
  SCOOP_LOG(kInfo) << "trial done: policy=" << PolicyName(config.policy)
                   << " seed=" << seed << " shards=" << k
                   << " events=" << engine.processed();

  ExperimentResult r = CollectResult(config, stats, telemetry,
                                     queries.AvgPctNodesQueried(), handle.agent,
                                     engine.processed());
  r.query_timeline = std::move(timeline);
  r.queue_wheel_absorbed = static_cast<double>(engine.wheel_absorbed());
  r.queue_wheel_spilled = static_cast<double>(engine.wheel_spilled());
  r.resolved_shards = static_cast<double>(k);
  r.shard_stall_us = static_cast<double>(engine.stall_us());
  r.shard_stall_episodes = static_cast<double>(engine.stall_episodes());
  r.shard_mirrored_frames = static_cast<double>(engine.mirrored_frames());
  r.partition_cut_edges = static_cast<double>(engine.cut_edges());
  r.partition_imbalance = engine.partition_imbalance();
  for (auto& p : profilers) AddProfile(&r, p.get());
  return r;
}

ExperimentResult RunAnyTrial(const ExperimentConfig& config, uint64_t seed) {
  auto wall_start = std::chrono::steady_clock::now();
  ExperimentResult r;
  if (config.policy == Policy::kHashAnalytical) {
    core::HashModelResult m = RunHashAnalysis(config, seed);
    r.sent_by_type[static_cast<size_t>(PacketType::kData)] = m.data_messages;
    r.sent_by_type[static_cast<size_t>(PacketType::kQuery)] = m.query_messages;
    r.sent_by_type[static_cast<size_t>(PacketType::kReply)] = m.reply_messages;
    r.total = m.total;
    r.total_excl_beacons = m.total;
  } else {
    r = RunTrial(config, seed);
  }
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return r;
}

ExperimentResult AggregateTrials(const std::vector<ExperimentResult>& trials) {
  SCOOP_CHECK_GE(trials.size(), 1u);
  ExperimentResult sum;
  sum.resolved_shards = 0;  // Defaults to 1 (the sequential engine).
  for (const ExperimentResult& r : trials) {
    for (int t = 0; t < kNumPacketTypes; ++t) {
      sum.sent_by_type[static_cast<size_t>(t)] += r.sent_by_type[static_cast<size_t>(t)];
    }
    sum.total += r.total;
    sum.total_excl_beacons += r.total_excl_beacons;
    sum.retransmissions += r.retransmissions;
    sum.mac_drops += r.mac_drops;
    sum.storage_success += r.storage_success;
    sum.owner_hit_rate += r.owner_hit_rate;
    sum.query_success += r.query_success;
    sum.summary_delivery += r.summary_delivery;
    sum.readings_lost += r.readings_lost;
    sum.readings_orphaned += r.readings_orphaned;
    sum.readings_rehomed += r.readings_rehomed;
    sum.queries_reissued += r.queries_reissued;
    sum.parent_losses += r.parent_losses;
    sum.send_retries += r.send_retries;
    sum.readings_produced += r.readings_produced;
    sum.queries_issued += r.queries_issued;
    sum.tuples_returned += r.tuples_returned;
    sum.indices_built += r.indices_built;
    sum.indices_disseminated += r.indices_disseminated;
    sum.indices_suppressed += r.indices_suppressed;
    sum.base_owned_fraction += r.base_owned_fraction;
    sum.avg_pct_nodes_queried += r.avg_pct_nodes_queried;
    sum.root_sent += r.root_sent;
    sum.root_received += r.root_received;
    sum.avg_node_sent += r.avg_node_sent;
    sum.max_node_sent += r.max_node_sent;
    sum.avg_node_lifetime_days += r.avg_node_lifetime_days;
    sum.root_lifetime_days += r.root_lifetime_days;
    sum.wall_seconds += r.wall_seconds;
    sum.sim_events += r.sim_events;
    sum.queue_wheel_absorbed += r.queue_wheel_absorbed;
    sum.queue_wheel_spilled += r.queue_wheel_spilled;
    sum.profile_queue_seconds += r.profile_queue_seconds;
    sum.profile_radio_seconds += r.profile_radio_seconds;
    sum.profile_agent_seconds += r.profile_agent_seconds;
    sum.profile_shard_sync_seconds += r.profile_shard_sync_seconds;
    sum.profile_other_seconds += r.profile_other_seconds;
    sum.resolved_shards += r.resolved_shards;
    sum.shard_stall_us += r.shard_stall_us;
    sum.shard_stall_episodes += r.shard_stall_episodes;
    sum.shard_mirrored_frames += r.shard_mirrored_frames;
    sum.partition_cut_edges += r.partition_cut_edges;
    sum.partition_imbalance += r.partition_imbalance;
  }
  double k = static_cast<double>(trials.size());
  for (int t = 0; t < kNumPacketTypes; ++t) sum.sent_by_type[static_cast<size_t>(t)] /= k;
  sum.total /= k;
  sum.total_excl_beacons /= k;
  sum.retransmissions /= k;
  sum.mac_drops /= k;
  sum.storage_success /= k;
  sum.owner_hit_rate /= k;
  sum.query_success /= k;
  sum.summary_delivery /= k;
  sum.readings_lost /= k;
  sum.readings_orphaned /= k;
  sum.readings_rehomed /= k;
  sum.queries_reissued /= k;
  sum.parent_losses /= k;
  sum.send_retries /= k;
  sum.readings_produced /= k;
  sum.queries_issued /= k;
  sum.tuples_returned /= k;
  sum.indices_built /= k;
  sum.indices_disseminated /= k;
  sum.indices_suppressed /= k;
  sum.base_owned_fraction /= k;
  sum.avg_pct_nodes_queried /= k;
  sum.root_sent /= k;
  sum.root_received /= k;
  sum.avg_node_sent /= k;
  sum.max_node_sent /= k;
  sum.avg_node_lifetime_days /= k;
  sum.root_lifetime_days /= k;
  sum.wall_seconds /= k;
  sum.sim_events /= k;
  sum.queue_wheel_absorbed /= k;
  sum.queue_wheel_spilled /= k;
  sum.profile_queue_seconds /= k;
  sum.profile_radio_seconds /= k;
  sum.profile_agent_seconds /= k;
  sum.profile_shard_sync_seconds /= k;
  sum.profile_other_seconds /= k;
  sum.resolved_shards /= k;
  sum.shard_stall_us /= k;
  sum.shard_stall_episodes /= k;
  sum.shard_mirrored_frames /= k;
  sum.partition_cut_edges /= k;
  sum.partition_imbalance /= k;
  return sum;
}

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  SCOOP_CHECK_GE(config.trials, 1);
  std::vector<ExperimentResult> rows;
  rows.reserve(static_cast<size_t>(config.trials));
  for (int trial = 0; trial < config.trials; ++trial) {
    ExperimentConfig c = config;
    if (config.trials > 1) {
      // One trace/metrics file per trial; a shared path would be clobbered.
      std::string suffix = "-t";
      suffix += std::to_string(trial);
      c.trace_out = ExpandObsPath(config.trace_out, suffix);
      c.metrics_out = ExpandObsPath(config.metrics_out, suffix);
    }
    rows.push_back(RunAnyTrial(c, MixSeed(config.seed, static_cast<uint64_t>(trial))));
  }
  return AggregateTrials(rows);
}

core::HashModelResult RunHashAnalysis(const ExperimentConfig& config, uint64_t seed) {
  sim::Topology topology = MakeTopology(config, seed);
  core::XmitsEstimator xmits(config.num_nodes);
  sim::RadioOptions radio;  // For the ACK model, to match the simulated MAC.
  for (int i = 0; i < config.num_nodes; ++i) {
    // Only audible links matter: AddLink drops anything below its minimum
    // quality, so walking the CSR neighbor lists instead of the full matrix
    // feeds it the identical link set.
    for (const sim::Topology::Link& link : topology.audible_from(static_cast<NodeId>(i))) {
      // Effective per-attempt success = delivery * ack delivery, matching
      // what the simulated link layer experiences.
      double p_ack = std::pow(topology.delivery_prob(link.to, static_cast<NodeId>(i)),
                              radio.ack_shortness_exponent);
      xmits.AddLink(static_cast<NodeId>(i), link.to, link.prob * p_ack);
    }
  }
  xmits.Build();

  std::unique_ptr<workload::DataSource> source = workload::MakeDataSource(
      config.source, config.source_options, topology.positions(), seed);
  ValueRange domain = source->domain();
  int64_t domain_size = static_cast<int64_t>(domain.hi) - domain.lo + 1;

  core::HashModelInputs inputs;
  inputs.xmits = &xmits;
  inputs.base = 0;
  inputs.num_nodes = config.num_nodes;
  inputs.readings_per_sec =
      static_cast<double>(config.num_nodes - 1) / ToSeconds(config.sample_interval);
  inputs.queries_per_sec =
      config.queries_enabled ? 1.0 / ToSeconds(config.query_interval) : 0.0;
  inputs.mean_query_width_values =
      (config.query_width_lo + config.query_width_hi) / 2.0 *
      static_cast<double>(domain_size);
  inputs.active_duration = config.duration - config.stabilization;
  return core::EvaluateHashModel(inputs);
}

ExperimentResult HashAnalysisAsResult(const ExperimentConfig& config) {
  SCOOP_CHECK(config.policy == Policy::kHashAnalytical);
  return RunExperiment(config);
}

}  // namespace scoop::harness
