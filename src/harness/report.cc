#include "harness/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace scoop::harness {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SCOOP_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << "  " << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    out << "\n";
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatCount(double value) {
  long long v = static_cast<long long>(std::llround(value));
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string grouped;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) grouped.push_back(',');
    grouped.push_back(*it);
    ++count;
  }
  if (v < 0) grouped.push_back('-');
  std::reverse(grouped.begin(), grouped.end());
  return grouped;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace scoop::harness
