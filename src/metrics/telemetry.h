// Application-level success counters, shared by agents and read by the
// experiment harness: data-path storage outcomes (§5.4: "about 85% of the
// time the appropriate destination node is found") and query success
// (§6: ~78% of query results retrieved).
#ifndef SCOOP_METRICS_TELEMETRY_H_
#define SCOOP_METRICS_TELEMETRY_H_

#include <cstdint>

namespace scoop::metrics {

/// Shared mutable counters for one simulation run.
struct Telemetry {
  // --- Data path ---
  /// Readings sampled by all nodes.
  uint64_t readings_produced = 0;
  /// Readings durably stored anywhere.
  uint64_t readings_stored = 0;
  /// ... at the owner the (newest applicable) index designated.
  uint64_t stored_at_owner = 0;
  /// ... at the basestation because routing could not find the owner
  /// (routing rule 4 fallback).
  uint64_t stored_at_base_fallback = 0;
  /// ... locally because the node had no complete index yet (§5.3).
  uint64_t stored_local_no_index = 0;
  /// Readings lost in transit (MAC drop with no further fallback).
  uint64_t readings_lost = 0;
  /// Data packets queued by their producer (batches count once).
  uint64_t data_packets_originated = 0;
  /// Data packets relayed by intermediate nodes (per forwarding decision).
  uint64_t data_packets_forwarded = 0;
  /// Readings that left their producer over the radio.
  uint64_t readings_sent_remote = 0;

  // --- Queries ---
  uint64_t queries_issued = 0;
  /// Sum over queries of the number of nodes asked.
  uint64_t query_targets_total = 0;
  /// Responder answers received at the base (first reply per responder).
  uint64_t replies_received = 0;
  /// Tuples returned to the user.
  uint64_t tuples_returned = 0;
  /// Queries answered without network traffic, from stored summaries (§5.5).
  uint64_t queries_answered_from_summaries = 0;
  /// Queries whose target set could not fit one frame even fully coarsened
  /// (value-range-heavy hand-built queries): answered from the base's own
  /// store only, so a nonzero count flags results that skipped the network.
  uint64_t queries_target_set_unsendable = 0;

  // --- Index lifecycle (basestation) ---
  uint64_t indices_built = 0;
  uint64_t indices_disseminated = 0;
  /// Rebuilds suppressed because the new index was too similar (§5.3).
  uint64_t indices_suppressed = 0;
  uint64_t store_local_decisions = 0;

  // --- Statistics collection ---
  uint64_t summaries_sent = 0;
  uint64_t summaries_received_at_base = 0;

  // --- Graceful degradation under faults (src/fault/) ---
  /// Readings parked locally with an "orphaned" mark because their owner
  /// was unreachable (no route, or forwarding retries exhausted).
  uint64_t readings_orphaned = 0;
  /// Orphaned readings re-routed to their owner after a later remap.
  uint64_t readings_rehomed = 0;
  /// Base-side query re-issues against the still-missing responder set.
  uint64_t queries_reissued = 0;
  /// Routing-tree parent evictions (beacon silence timeout).
  uint64_t parent_losses = 0;
  /// Packet send retries scheduled by the bounded-backoff fallback.
  uint64_t send_retries = 0;

  /// Accumulates another run's (or another shard's) counters into this
  /// one. Sharded trials keep one Telemetry per shard (each mutated only
  /// by its shard's thread) and merge after the run.
  void MergeFrom(const Telemetry& other) {
    readings_produced += other.readings_produced;
    readings_stored += other.readings_stored;
    stored_at_owner += other.stored_at_owner;
    stored_at_base_fallback += other.stored_at_base_fallback;
    stored_local_no_index += other.stored_local_no_index;
    readings_lost += other.readings_lost;
    data_packets_originated += other.data_packets_originated;
    data_packets_forwarded += other.data_packets_forwarded;
    readings_sent_remote += other.readings_sent_remote;
    queries_issued += other.queries_issued;
    query_targets_total += other.query_targets_total;
    replies_received += other.replies_received;
    tuples_returned += other.tuples_returned;
    queries_answered_from_summaries += other.queries_answered_from_summaries;
    queries_target_set_unsendable += other.queries_target_set_unsendable;
    indices_built += other.indices_built;
    indices_disseminated += other.indices_disseminated;
    indices_suppressed += other.indices_suppressed;
    store_local_decisions += other.store_local_decisions;
    summaries_sent += other.summaries_sent;
    summaries_received_at_base += other.summaries_received_at_base;
    readings_orphaned += other.readings_orphaned;
    readings_rehomed += other.readings_rehomed;
    queries_reissued += other.queries_reissued;
    parent_losses += other.parent_losses;
    send_retries += other.send_retries;
  }

  /// Fraction of produced readings that were durably stored.
  double StorageSuccessRate() const {
    return readings_produced == 0
               ? 0.0
               : static_cast<double>(readings_stored) / readings_produced;
  }

  /// Fraction of *routed* readings that reached their designated owner
  /// (§5.4's ~85%). Readings stored locally before the first index existed
  /// are excluded: they were never routed.
  double OwnerHitRate() const {
    uint64_t routed = readings_stored - stored_local_no_index;
    return routed == 0 ? 0.0 : static_cast<double>(stored_at_owner) / routed;
  }

  /// Fraction of asked nodes whose replies reached the base.
  double QuerySuccessRate() const {
    return query_targets_total == 0
               ? 0.0
               : static_cast<double>(replies_received) / query_targets_total;
  }

  /// Fraction of summaries that survived the trip to the base.
  double SummaryDeliveryRate() const {
    return summaries_sent == 0
               ? 0.0
               : static_cast<double>(summaries_received_at_base) / summaries_sent;
  }
};

}  // namespace scoop::metrics

#endif  // SCOOP_METRICS_TELEMETRY_H_
