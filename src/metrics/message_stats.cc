#include "metrics/message_stats.h"

#include <sstream>

#include "common/check.h"

namespace scoop::metrics {

MessageStats::MessageStats(int num_nodes)
    : per_node_sent_(static_cast<size_t>(num_nodes), 0),
      per_node_recv_(static_cast<size_t>(num_nodes), 0),
      per_node_bytes_sent_(static_cast<size_t>(num_nodes), 0),
      per_node_bytes_recv_(static_cast<size_t>(num_nodes), 0),
      per_node_workload_bytes_(static_cast<size_t>(num_nodes), 0),
      per_node_sent_by_type_(static_cast<size_t>(num_nodes)),
      per_node_recv_by_type_(static_cast<size_t>(num_nodes)) {
  SCOOP_CHECK_GT(num_nodes, 0);
}

void MessageStats::OnTransmit(NodeId src, const Packet& packet, bool retransmission) {
  size_t type = static_cast<size_t>(packet.hdr.type);
  TypeCounters& c = by_type_[type];
  ++c.sent;
  if (retransmission) ++c.retransmissions;
  uint64_t bytes = static_cast<uint64_t>(packet.WireSize());
  c.bytes_sent += bytes;
  ++per_node_sent_[src];
  per_node_bytes_sent_[src] += bytes;
  if (packet.hdr.type != PacketType::kBeacon) per_node_workload_bytes_[src] += bytes;
  per_node_sent_by_type_[src][type] += 1;
}

void MessageStats::OnDeliver(NodeId dst, const Packet& packet, bool addressed) {
  size_t type = static_cast<size_t>(packet.hdr.type);
  if (addressed) {
    ++by_type_[type].delivered;
    ++per_node_recv_[dst];
    per_node_recv_by_type_[dst][type] += 1;
    if (packet.hdr.type != PacketType::kBeacon) {
      per_node_workload_bytes_[dst] += static_cast<uint64_t>(packet.WireSize());
    }
  } else {
    ++by_type_[type].snooped;
  }
  per_node_bytes_recv_[dst] += static_cast<uint64_t>(packet.WireSize());
}

void MessageStats::OnDrop(NodeId src, const Packet& packet) {
  (void)src;
  ++by_type_[static_cast<size_t>(packet.hdr.type)].dropped;
}

void MessageStats::MergeFrom(const MessageStats& other) {
  SCOOP_CHECK_EQ(num_nodes(), other.num_nodes());
  for (size_t t = 0; t < by_type_.size(); ++t) {
    TypeCounters& a = by_type_[t];
    const TypeCounters& b = other.by_type_[t];
    a.sent += b.sent;
    a.retransmissions += b.retransmissions;
    a.delivered += b.delivered;
    a.snooped += b.snooped;
    a.dropped += b.dropped;
    a.bytes_sent += b.bytes_sent;
  }
  for (size_t i = 0; i < per_node_sent_.size(); ++i) {
    per_node_sent_[i] += other.per_node_sent_[i];
    per_node_recv_[i] += other.per_node_recv_[i];
    per_node_bytes_sent_[i] += other.per_node_bytes_sent_[i];
    per_node_bytes_recv_[i] += other.per_node_bytes_recv_[i];
    per_node_workload_bytes_[i] += other.per_node_workload_bytes_[i];
    for (size_t t = 0; t < per_node_sent_by_type_[i].size(); ++t) {
      per_node_sent_by_type_[i][t] += other.per_node_sent_by_type_[i][t];
      per_node_recv_by_type_[i][t] += other.per_node_recv_by_type_[i][t];
    }
  }
}

uint64_t MessageStats::TotalSent() const {
  uint64_t total = 0;
  for (const TypeCounters& c : by_type_) total += c.sent;
  return total;
}

uint64_t MessageStats::TotalSentExclBeacons() const {
  return TotalSent() - by_type_[static_cast<size_t>(PacketType::kBeacon)].sent;
}

std::string MessageStats::ToString() const {
  std::ostringstream out;
  out << "messages sent (incl. retx):\n";
  for (int t = 0; t < kNumPacketTypes; ++t) {
    const TypeCounters& c = by_type_[static_cast<size_t>(t)];
    out << "  " << PacketTypeName(static_cast<PacketType>(t)) << ": " << c.sent
        << " (retx " << c.retransmissions << ", delivered " << c.delivered << ", dropped "
        << c.dropped << ")\n";
  }
  out << "  total: " << TotalSent() << " (excl beacons: " << TotalSentExclBeacons() << ")";
  return out.str();
}

}  // namespace scoop::metrics
