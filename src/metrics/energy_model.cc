#include "metrics/energy_model.h"

#include <limits>

namespace scoop::metrics {

double EnergyModel::LifetimeDays(double energy_j, SimTime duration) const {
  if (duration <= 0) return 0.0;
  double power_w = energy_j / ToSeconds(duration);
  if (power_w <= 0) return std::numeric_limits<double>::infinity();
  double lifetime_s = options_.battery_joules / power_w;
  return lifetime_s / 86400.0;
}

}  // namespace scoop::metrics
