// Energy model from §2.1: radio costs ~700 nJ/bit (two orders of magnitude
// above Flash's 28 nJ/bit write), so communication dominates node lifetime.
// Converts per-node byte counts into energy and battery-lifetime estimates
// (the paper's "LOCAL node lasts a month, SCOOP average node three months,
// SCOOP root two weeks" comparison).
#ifndef SCOOP_METRICS_ENERGY_MODEL_H_
#define SCOOP_METRICS_ENERGY_MODEL_H_

#include <cstdint>

#include "common/sim_time.h"

namespace scoop::metrics {

/// Energy parameters (defaults per §2.1).
struct EnergyOptions {
  /// Radio transmit energy per bit.
  double tx_nj_per_bit = 700.0;
  /// Radio receive/decode energy per bit (comparable magnitude to tx on
  /// mote radios).
  double rx_nj_per_bit = 350.0;
  /// Flash write energy per bit.
  double flash_write_nj_per_bit = 28.0;
  /// Usable battery capacity in joules (2x AA alkaline ~ 9 Wh usable at
  /// mote loads ~= 32 kJ; we use a conservative fraction).
  double battery_joules = 20000.0;
};

/// Converts activity totals into energy and lifetime.
class EnergyModel {
 public:
  explicit EnergyModel(const EnergyOptions& options = {}) : options_(options) {}

  /// Radio energy (J) for `tx_bytes` transmitted and `rx_bytes` received.
  double RadioEnergyJ(uint64_t tx_bytes, uint64_t rx_bytes) const {
    return (options_.tx_nj_per_bit * 8.0 * static_cast<double>(tx_bytes) +
            options_.rx_nj_per_bit * 8.0 * static_cast<double>(rx_bytes)) *
           1e-9;
  }

  /// Flash write energy (J) for `bytes` written.
  double FlashWriteEnergyJ(uint64_t bytes) const {
    return options_.flash_write_nj_per_bit * 8.0 * static_cast<double>(bytes) * 1e-9;
  }

  /// Projects battery lifetime in days, given `energy_j` consumed over
  /// `duration` of operation. Returns +inf-like large value when idle.
  double LifetimeDays(double energy_j, SimTime duration) const;

  const EnergyOptions& options() const { return options_; }

 private:
  EnergyOptions options_;
};

}  // namespace scoop::metrics

#endif  // SCOOP_METRICS_ENERGY_MODEL_H_
