// Message accounting: the paper's cost metric is the total number of
// link-layer transmissions, broken down by packet type (Figure 3). Also
// tracks per-node transmit/receive counts for the root-skew analysis (§6).
#ifndef SCOOP_METRICS_MESSAGE_STATS_H_
#define SCOOP_METRICS_MESSAGE_STATS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/wire.h"

namespace scoop::metrics {

/// Counters for one packet type.
struct TypeCounters {
  uint64_t sent = 0;           ///< Transmissions, including retransmissions.
  uint64_t retransmissions = 0;
  uint64_t delivered = 0;      ///< Successful receptions addressed to the receiver.
  uint64_t snooped = 0;        ///< Overheard receptions.
  uint64_t dropped = 0;        ///< Frames abandoned by the MAC.
  uint64_t bytes_sent = 0;     ///< Wire bytes transmitted (incl. retx).
};

/// Whole-network message statistics for one run.
class MessageStats {
 public:
  explicit MessageStats(int num_nodes);

  /// Hooks; the harness wires these to the radio.
  void OnTransmit(NodeId src, const Packet& packet, bool retransmission);
  void OnDeliver(NodeId dst, const Packet& packet, bool addressed);
  void OnDrop(NodeId src, const Packet& packet);

  const TypeCounters& ByType(PacketType type) const {
    return by_type_[static_cast<size_t>(type)];
  }

  /// Total transmissions across all packet types.
  uint64_t TotalSent() const;

  /// Total transmissions excluding routing beacons. Figure 3 reports only
  /// data/summary/mapping/query/reply traffic; the tree-maintenance
  /// substrate is identical across policies.
  uint64_t TotalSentExclBeacons() const;

  /// Transmissions by node `id`.
  uint64_t SentBy(NodeId id) const { return per_node_sent_[id]; }

  /// Successful receptions addressed to node `id`.
  uint64_t ReceivedBy(NodeId id) const { return per_node_recv_[id]; }

  /// Transmissions of packets of `type` by node `id`.
  uint64_t SentByOfType(NodeId id, PacketType type) const {
    return per_node_sent_by_type_[id][static_cast<size_t>(type)];
  }

  /// Receptions of packets of `type` addressed to node `id`.
  uint64_t ReceivedByOfType(NodeId id, PacketType type) const {
    return per_node_recv_by_type_[id][static_cast<size_t>(type)];
  }

  /// Wire bytes transmitted by node `id` (for the energy model).
  uint64_t BytesSentBy(NodeId id) const { return per_node_bytes_sent_[id]; }

  /// Wire bytes received by node `id`, including snooped traffic (radios
  /// pay reception energy for everything they decode).
  uint64_t BytesReceivedBy(NodeId id) const { return per_node_bytes_recv_[id]; }

  /// Workload bytes handled by node `id`: transmissions plus *addressed*
  /// receptions, excluding routing beacons. This isolates the energy the
  /// storage policy itself causes (the §6 lifetime comparison), as opposed
  /// to the always-on listening cost common to every policy.
  uint64_t WorkloadBytesBy(NodeId id) const {
    return per_node_workload_bytes_[id];
  }

  int num_nodes() const { return static_cast<int>(per_node_sent_.size()); }

  /// Accumulates another instance's counters into this one (elementwise
  /// sums; both must cover the same node count). Sharded trials keep one
  /// MessageStats per shard and merge after the run.
  void MergeFrom(const MessageStats& other);

  /// Multi-line human-readable report.
  std::string ToString() const;

 private:
  std::array<TypeCounters, kNumPacketTypes> by_type_{};
  std::vector<uint64_t> per_node_sent_;
  std::vector<uint64_t> per_node_recv_;
  std::vector<uint64_t> per_node_bytes_sent_;
  std::vector<uint64_t> per_node_bytes_recv_;
  std::vector<uint64_t> per_node_workload_bytes_;
  std::vector<std::array<uint64_t, kNumPacketTypes>> per_node_sent_by_type_;
  std::vector<std::array<uint64_t, kNumPacketTypes>> per_node_recv_by_type_;
};

}  // namespace scoop::metrics

#endif  // SCOOP_METRICS_MESSAGE_STATS_H_
