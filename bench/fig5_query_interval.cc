// E5 -- Figure 5: total cost for SCOOP / LOCAL / BASE as the interval
// between queries grows (query rate drops), REAL trace.
//
// Paper shape: only LOCAL is substantially affected -- its whole cost is
// query flooding + replies, so it becomes competitive as queries become
// rare. BASE is flat (no query cost); SCOOP's small query cost shrinks
// further.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

int main() {
  using namespace scoop;
  harness::ExperimentConfig config;
  config.source = workload::DataSourceKind::kReal;

  std::printf("=== Figure 5: cost vs query interval (REAL, simulation) ===\n\n");

  const int intervals_s[] = {5, 10, 15, 30, 50};

  harness::TablePrinter table({"policy", "query-interval", "total-messages"});
  for (harness::Policy policy :
       {harness::Policy::kScoop, harness::Policy::kLocal, harness::Policy::kBase}) {
    config.policy = policy;
    for (int interval : intervals_s) {
      config.query_interval = Seconds(interval);
      harness::ExperimentResult r = harness::RunExperiment(config);
      table.AddRow({harness::PolicyName(policy), std::to_string(interval) + "s",
                    harness::FormatCount(r.total_excl_beacons)});
    }
  }
  table.Print();
  return 0;
}
