// Robustness extension (§2.1 / §8 future work): a fraction of the sensor
// nodes loses its radio at t=20min. Scoop must keep storing and answering:
// the tree heals (§5.1 eviction + reselection), data for dead owners falls
// back per the §5.4 rules, and the planner's targets shrink as dead nodes
// stop reporting.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

int main() {
  using namespace scoop;
  harness::ExperimentConfig config;
  config.policy = harness::Policy::kScoop;
  config.source = workload::DataSourceKind::kReal;
  config.trials = 2;
  config.failure_time = Minutes(20);

  std::printf("=== Robustness: Scoop under node failures at t=20min (REAL) ===\n\n");

  harness::TablePrinter table({"failed-nodes", "stored", "owner-hit", "query-success",
                               "lost-readings", "total-messages"});
  for (double fraction : {0.0, 0.1, 0.2, 0.3}) {
    config.node_failure_fraction = fraction;
    harness::ExperimentResult r = harness::RunExperiment(config);
    double lost = r.readings_produced - r.readings_produced * r.storage_success;
    (void)lost;
    table.AddRow({harness::FormatPercent(fraction, 0),
                  harness::FormatPercent(r.storage_success),
                  harness::FormatPercent(r.owner_hit_rate),
                  harness::FormatPercent(r.query_success),
                  harness::FormatCount(r.readings_produced * (1 - r.storage_success)),
                  harness::FormatCount(r.total_excl_beacons)});
  }
  table.Print();
  std::printf(
      "\nStorage success degrades gracefully with the failed fraction; the\n"
      "survivors' data keeps flowing because the tree re-forms around the\n"
      "holes and unreachable owners fall back toward the basestation.\n");
  return 0;
}
