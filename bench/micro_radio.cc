// Microbenchmarks of the radio/MAC hot path: a broadcast storm, a unicast
// convergecast toward the basestation, and a collision-heavy synchronized
// grid burst, each at N in {63, 121, 500, 1000}. `LegacyRadio` is a
// faithful copy of the seed implementation -- every transmission walks all
// N nodes through the delivery matrix, and carrier sense / collision /
// half-duplex checks each linearly scan a shared history vector, with the
// frame airtime recomputed on every channel attempt -- kept here so the
// neighborhood-indexed rework in sim/radio.{h,cc} is benchmarked against
// it in the same binary (the same pattern micro_event_queue uses). Both
// variants use the same BackoffWindow and draw RNG identically, so they
// simulate the identical transmission schedule: the measured difference is
// purely the per-event data-structure work. The PR-3 acceptance bar is
// >= 3x events/second on the broadcast storm at N = 500.
#include <benchmark/benchmark.h>

#include <cmath>
#include <deque>
#include <functional>
#include <map>
#include <queue>
#include <utility>
#include <vector>

#include "net/wire.h"
#include "sim/event_queue.h"
#include "sim/radio.h"
#include "sim/radio_options.h"
#include "sim/topology.h"

namespace scoop {
namespace {

using sim::EventQueue;
using sim::RadioOptions;
using sim::Topology;

// ---------------------------------------------------------------------------
// The seed Radio, verbatim except that (a) hooks irrelevant to the bench
// (drop/deliver observers) collapse to counters and (b) the CSMA window
// comes from sim::Radio::BackoffWindow so both variants schedule
// identically.
class LegacyRadio {
 public:
  LegacyRadio(const Topology* topology, const RadioOptions& options, EventQueue* queue,
              uint64_t seed)
      : topology_(topology),
        options_(options),
        queue_(queue),
        rng_(MixSeed(seed, /*entity_id=*/0xAD10), /*stream=*/0xAD10),
        mac_(static_cast<size_t>(topology->num_nodes())),
        alive_(static_cast<size_t>(topology->num_nodes()), true) {}

  using SendDoneHook = std::function<void(NodeId, const Packet&, bool)>;
  void set_send_done_hook(SendDoneHook hook) { send_done_hook_ = std::move(hook); }

  uint64_t transmissions() const { return transmissions_; }
  uint64_t deliveries() const { return deliveries_; }

  void Send(NodeId src, Packet pkt) {
    if (!alive_[src]) return;
    pkt.hdr.link_src = src;
    OutFrame frame;
    frame.pkt = std::move(pkt);
    frame.retries_left =
        (frame.pkt.hdr.link_dst == kBroadcastId) ? 0 : options_.unicast_retries;
    mac_[src].queue.push_back(std::move(frame));
    TryStart(src);
  }

 private:
  struct OutFrame {
    Packet pkt;
    int retries_left = 0;
    int channel_attempts = 0;
    bool seq_assigned = false;
  };

  struct MacState {
    std::deque<OutFrame> queue;
    bool transmitting = false;
    bool backoff_scheduled = false;
    uint16_t next_seq = 1;
  };

  struct Transmission {
    NodeId src = kInvalidNodeId;
    SimTime start = 0;
    SimTime end = 0;
  };

  SimTime Airtime(int wire_size) const {
    double bits = static_cast<double>(options_.link_header_bytes + wire_size) * 8.0;
    return static_cast<SimTime>(bits / options_.bitrate_bps * kSecond);
  }

  bool ChannelBusy(NodeId node) const {
    SimTime now = queue_->now();
    for (const Transmission& tx : history_) {
      if (tx.end <= now) continue;
      if (tx.src == node) return true;
      if (topology_->delivery_prob(tx.src, node) >= options_.interference_threshold) {
        return true;
      }
    }
    return false;
  }

  bool Collided(NodeId receiver, NodeId sender, SimTime start, SimTime end) const {
    if (!options_.model_collisions) return false;
    double signal = topology_->delivery_prob(sender, receiver);
    for (const Transmission& tx : history_) {
      if (tx.src == sender || tx.src == receiver) continue;
      if (tx.end <= start || tx.start >= end) continue;
      double interference = topology_->delivery_prob(tx.src, receiver);
      if (interference < options_.interference_threshold) continue;
      if (interference >= options_.capture_ratio * signal) return true;
    }
    return false;
  }

  bool WasTransmitting(NodeId node, SimTime start, SimTime end) const {
    for (const Transmission& tx : history_) {
      if (tx.src != node) continue;
      if (tx.end <= start || tx.start >= end) continue;
      return true;
    }
    return false;
  }

  void PruneTransmissions() {
    SimTime horizon = queue_->now() - 4 * Airtime(options_.max_packet_bytes);
    std::erase_if(history_, [horizon](const Transmission& tx) { return tx.end < horizon; });
  }

  void TryStart(NodeId src) {
    MacState& mac = mac_[src];
    if (mac.transmitting || mac.backoff_scheduled || mac.queue.empty()) return;

    OutFrame& frame = mac.queue.front();
    if (ChannelBusy(src)) {
      ++frame.channel_attempts;
      if (frame.channel_attempts >= options_.max_channel_attempts) {
        OutFrame dropped = std::move(mac.queue.front());
        mac.queue.pop_front();
        if (send_done_hook_) send_done_hook_(src, dropped.pkt, false);
        TryStart(src);
        return;
      }
      SimTime window = sim::Radio::BackoffWindow(options_, frame.channel_attempts);
      SimTime delay = 1 + rng_.UniformInt(0, window - 1);
      mac.backoff_scheduled = true;
      queue_->ScheduleAfter(delay, [this, src] {
        mac_[src].backoff_scheduled = false;
        TryStart(src);
      });
      return;
    }

    if (!frame.seq_assigned) {
      frame.pkt.hdr.seq = mac.next_seq++;
      frame.seq_assigned = true;
    }
    ++transmissions_;
    SimTime start = queue_->now();
    SimTime end = start + Airtime(frame.pkt.WireSize());
    history_.push_back(Transmission{src, start, end});
    mac.transmitting = true;
    queue_->ScheduleAt(end, [this, src, start, end] { FinishTx(src, start, end); });
  }

  void FinishTx(NodeId src, SimTime start, SimTime end) {
    MacState& mac = mac_[src];
    mac.transmitting = false;
    if (mac.queue.empty()) return;

    OutFrame& frame = mac.queue.front();
    const Packet& pkt = frame.pkt;
    NodeId dst = pkt.hdr.link_dst;
    bool dst_received = false;

    int n = topology_->num_nodes();
    for (NodeId r = 0; r < n; ++r) {
      if (r == src) continue;
      if (!alive_[r]) continue;
      double p = topology_->delivery_prob(src, r);
      if (p <= 0.0) continue;
      if (!rng_.Bernoulli(p)) continue;
      if (WasTransmitting(r, start, end)) continue;
      if (Collided(r, src, start, end)) continue;
      if (dst == r) dst_received = true;
      ++deliveries_;
    }

    if (dst == kBroadcastId) {
      Packet sent = std::move(mac.queue.front().pkt);
      mac.queue.pop_front();
      if (send_done_hook_) send_done_hook_(src, sent, true);
    } else {
      double p_ack = std::pow(topology_->delivery_prob(dst, src),
                              options_.ack_shortness_exponent);
      bool acked = dst_received && rng_.Bernoulli(p_ack);
      if (acked) {
        Packet sent = std::move(mac.queue.front().pkt);
        mac.queue.pop_front();
        if (send_done_hook_) send_done_hook_(src, sent, true);
      } else if (frame.retries_left > 0) {
        --frame.retries_left;
        frame.channel_attempts = 0;
      } else {
        Packet sent = std::move(mac.queue.front().pkt);
        mac.queue.pop_front();
        if (send_done_hook_) send_done_hook_(src, sent, false);
      }
    }

    PruneTransmissions();
    TryStart(src);
  }

  const Topology* topology_;
  RadioOptions options_;
  EventQueue* queue_;
  Rng rng_;
  std::vector<MacState> mac_;
  std::vector<bool> alive_;
  std::vector<Transmission> history_;
  SendDoneHook send_done_hook_;
  uint64_t transmissions_ = 0;
  uint64_t deliveries_ = 0;
};

// ---------------------------------------------------------------------------
// Thin adapter so sim::Radio exposes the same counters the bench reports.
class IndexedRadio {
 public:
  IndexedRadio(const Topology* topology, const RadioOptions& options, EventQueue* queue,
               uint64_t seed)
      : radio_(topology, options, queue, seed) {
    radio_.set_transmit_hook([this](NodeId, const Packet&, bool) { ++transmissions_; });
    radio_.set_deliver_hook([this](NodeId, const Packet&, bool) { ++deliveries_; });
  }

  void set_send_done_hook(sim::Radio::SendDoneHook hook) {
    radio_.set_send_done_hook(std::move(hook));
  }
  void Send(NodeId src, Packet pkt) { radio_.Send(src, std::move(pkt)); }
  uint64_t transmissions() const { return transmissions_; }
  uint64_t deliveries() const { return deliveries_; }

 private:
  sim::Radio radio_;
  uint64_t transmissions_ = 0;
  uint64_t deliveries_ = 0;
};

// ---------------------------------------------------------------------------
// Topology caches (construction is expensive at N = 1000; build once per
// process and share across variants so both run the identical graph).
const Topology& CachedRandom(int n) {
  static auto* cache = new std::map<int, Topology>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    sim::RandomTopologyOptions opts;
    opts.num_nodes = n;
    opts.seed = 9;
    // Scale the area with N to keep physical density comparable; the
    // range auto-tuner then holds the paper's ~20% audible fraction.
    double scale = std::sqrt(static_cast<double>(n) / 63.0);
    opts.area_width *= scale;
    opts.area_height *= scale;
    it = cache->emplace(n, Topology::MakeRandom(opts)).first;
  }
  return it->second;
}

const Topology& CachedGrid(int n) {
  static auto* cache = new std::map<int, Topology>();
  auto it = cache->find(n);
  if (it == cache->end()) {
    sim::GridTopologyOptions opts;
    opts.num_nodes = n;
    opts.seed = 9;
    it = cache->emplace(n, Topology::MakeGrid(opts)).first;
  }
  return it->second;
}

Packet SmallBroadcast(NodeId src) {
  BeaconPayload b;
  b.parent = 0;
  b.depth = 1;
  return MakePacket(src, 0, b);
}

/// Routing parents for the convergecast: BFS depth from the base over
/// usable links, each node unicasting to its strongest one-hop-closer
/// neighbor.
std::vector<NodeId> ConvergecastParents(const Topology& topo) {
  int n = topo.num_nodes();
  constexpr double kUsable = 0.1;
  std::vector<int> depth(static_cast<size_t>(n), -1);
  depth[0] = 0;
  std::queue<int> frontier;
  frontier.push(0);
  while (!frontier.empty()) {
    int u = frontier.front();
    frontier.pop();
    for (int v = 0; v < n; ++v) {
      if (depth[static_cast<size_t>(v)] >= 0) continue;
      if (topo.delivery_prob(static_cast<NodeId>(v), static_cast<NodeId>(u)) >= kUsable) {
        depth[static_cast<size_t>(v)] = depth[static_cast<size_t>(u)] + 1;
        frontier.push(v);
      }
    }
  }
  std::vector<NodeId> parent(static_cast<size_t>(n), 0);
  for (int v = 1; v < n; ++v) {
    double best = -1;
    for (int u = 0; u < n; ++u) {
      if (depth[static_cast<size_t>(u)] < 0 || depth[static_cast<size_t>(v)] < 0) continue;
      if (depth[static_cast<size_t>(u)] != depth[static_cast<size_t>(v)] - 1) continue;
      double p = topo.delivery_prob(static_cast<NodeId>(v), static_cast<NodeId>(u));
      if (p > best) {
        best = p;
        parent[static_cast<size_t>(v)] = static_cast<NodeId>(u);
      }
    }
  }
  return parent;
}

// ---------------------------------------------------------------------------
// Broadcast storm (paper radio regime: each node hears ~20% of the
// network): every node re-broadcasts the instant its previous frame
// completes; boots are staggered so CSMA interleaves them.
template <typename RadioT>
void BM_BroadcastStorm(benchmark::State& state) {
  const Topology& topo = CachedRandom(static_cast<int>(state.range(0)));
  int n = topo.num_nodes();
  EventQueue queue;
  RadioOptions opts;
  RadioT radio(&topo, opts, &queue, /*seed=*/42);
  radio.set_send_done_hook(
      [&radio](NodeId src, const Packet&, bool) { radio.Send(src, SmallBroadcast(src)); });
  for (int i = 0; i < n; ++i) {
    NodeId id = static_cast<NodeId>(i);
    queue.ScheduleAt(Millis(i + 1), [&radio, id] { radio.Send(id, SmallBroadcast(id)); });
  }
  for (auto _ : state) {
    queue.RunOne();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["tx"] = static_cast<double>(radio.transmissions());
  state.counters["rx"] = static_cast<double>(radio.deliveries());
}
BENCHMARK_TEMPLATE(BM_BroadcastStorm, LegacyRadio)->Arg(63)->Arg(121)->Arg(500)->Arg(1000);
BENCHMARK_TEMPLATE(BM_BroadcastStorm, IndexedRadio)->Arg(63)->Arg(121)->Arg(500)->Arg(1000);

// ---------------------------------------------------------------------------
// Unicast convergecast: every sensor streams ACKed unicasts to its routing
// parent (retries, ACK draws, and half-duplex checks dominate).
template <typename RadioT>
void BM_UnicastConvergecast(benchmark::State& state) {
  const Topology& topo = CachedRandom(static_cast<int>(state.range(0)));
  int n = topo.num_nodes();
  static auto* parents_cache = new std::map<const Topology*, std::vector<NodeId>>();
  auto pit = parents_cache->find(&topo);
  if (pit == parents_cache->end()) {
    pit = parents_cache->emplace(&topo, ConvergecastParents(topo)).first;
  }
  const std::vector<NodeId>& parent = pit->second;

  EventQueue queue;
  RadioOptions opts;
  RadioT radio(&topo, opts, &queue, /*seed=*/43);
  auto send_to_parent = [&radio, &parent](NodeId src) {
    Packet p = SmallBroadcast(src);
    p.hdr.link_dst = parent[src];
    radio.Send(src, p);
  };
  radio.set_send_done_hook(
      [send_to_parent](NodeId src, const Packet&, bool) { send_to_parent(src); });
  for (int i = 1; i < n; ++i) {
    NodeId id = static_cast<NodeId>(i);
    queue.ScheduleAt(Millis(i + 1), [send_to_parent, id] { send_to_parent(id); });
  }
  for (auto _ : state) {
    queue.RunOne();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["tx"] = static_cast<double>(radio.transmissions());
}
BENCHMARK_TEMPLATE(BM_UnicastConvergecast, LegacyRadio)->Arg(63)->Arg(121)->Arg(500)->Arg(1000);
BENCHMARK_TEMPLATE(BM_UnicastConvergecast, IndexedRadio)->Arg(63)->Arg(121)->Arg(500)->Arg(1000);

// ---------------------------------------------------------------------------
// Collision-heavy grid: all nodes boot at the same instant on the dense
// lattice and re-broadcast on completion, so backoff, carrier sense, and
// collision checks run saturated.
template <typename RadioT>
void BM_CollisionGridBurst(benchmark::State& state) {
  const Topology& topo = CachedGrid(static_cast<int>(state.range(0)));
  int n = topo.num_nodes();
  EventQueue queue;
  RadioOptions opts;
  RadioT radio(&topo, opts, &queue, /*seed=*/44);
  radio.set_send_done_hook(
      [&radio](NodeId src, const Packet&, bool) { radio.Send(src, SmallBroadcast(src)); });
  for (int i = 0; i < n; ++i) {
    NodeId id = static_cast<NodeId>(i);
    queue.ScheduleAt(0, [&radio, id] { radio.Send(id, SmallBroadcast(id)); });
  }
  for (auto _ : state) {
    queue.RunOne();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["tx"] = static_cast<double>(radio.transmissions());
}
BENCHMARK_TEMPLATE(BM_CollisionGridBurst, LegacyRadio)->Arg(63)->Arg(121)->Arg(500)->Arg(1000);
BENCHMARK_TEMPLATE(BM_CollisionGridBurst, IndexedRadio)->Arg(63)->Arg(121)->Arg(500)->Arg(1000);

}  // namespace
}  // namespace scoop

BENCHMARK_MAIN();
