// E13 -- The §4 extensions and model validation:
//   * owner sets (multiple candidate owners per value, k = 1..3)
//   * range-granularity placement (blocks of values per owner)
//   * store-local fallback enabled (the paper's experiments disable it)
//   * simulated HASH vs the analytical HASH model (sanity check).
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

int main() {
  using namespace scoop;
  harness::ExperimentConfig base_config;
  base_config.policy = harness::Policy::kScoop;
  base_config.source = workload::DataSourceKind::kGaussian;
  base_config.trials = 2;

  std::printf("=== Ablation: §4 extensions (Scoop, GAUSSIAN) ===\n\n");

  struct Variant {
    const char* name;
    int owner_set;
    int granularity;
    bool store_local;
  };
  const Variant variants[] = {
      {"paper default (k=1, per-value)", 1, 1, false},
      {"owner sets k=2", 2, 1, false},
      {"owner sets k=3", 3, 1, false},
      {"range placement g=5", 1, 5, false},
      {"range placement g=10", 1, 10, false},
      {"store-local fallback enabled", 1, 1, true},
  };

  harness::TablePrinter table(
      {"variant", "data", "mapping", "query+reply", "total", "owner-hit"});
  for (const Variant& v : variants) {
    harness::ExperimentConfig config = base_config;
    config.builder.owner_set_size = v.owner_set;
    config.builder.range_granularity = v.granularity;
    config.builder.consider_store_local = v.store_local;
    harness::ExperimentResult r = harness::RunExperiment(config);
    table.AddRow({v.name, harness::FormatCount(r.data()), harness::FormatCount(r.mapping()),
                  harness::FormatCount(r.query_reply()),
                  harness::FormatCount(r.total_excl_beacons),
                  harness::FormatPercent(r.owner_hit_rate)});
  }
  table.Print();

  std::printf("\n=== Validation: simulated HASH vs analytical HASH model ===\n\n");
  harness::TablePrinter hash_table({"variant", "data", "query+reply", "total"});
  for (harness::Policy policy : {harness::Policy::kHashSim, harness::Policy::kHashAnalytical}) {
    harness::ExperimentConfig config = base_config;
    config.policy = policy;
    harness::ExperimentResult r = harness::RunExperiment(config);
    hash_table.AddRow({harness::PolicyName(policy), harness::FormatCount(r.data()),
                       harness::FormatCount(r.query_reply()),
                       harness::FormatCount(r.total_excl_beacons)});
  }
  hash_table.Print();
  std::printf(
      "\nThe analytical model has no summaries/mappings and no MAC dynamics;\n"
      "agreement within a small factor validates using it for Figure 3, as\n"
      "the paper did.\n");
  return 0;
}
