// E12 -- Ablation of §5.4 routing design choices: reading batching (n=1 vs
// the paper's 5), the rule-3 neighbor shortcut, and rule-5 descendant
// routing. Shows what each feature contributes to Scoop's message budget.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

int main() {
  using namespace scoop;
  harness::ExperimentConfig base_config;
  base_config.policy = harness::Policy::kScoop;
  base_config.source = workload::DataSourceKind::kReal;
  base_config.trials = 2;

  std::printf("=== Ablation: §5.4 routing features (Scoop, REAL) ===\n\n");

  struct Variant {
    const char* name;
    int max_batch;
    bool shortcut;
    bool descendants;
  };
  const Variant variants[] = {
      {"full (batch=5, shortcut, descendants)", 5, true, true},
      {"no batching (batch=1)", 1, true, true},
      {"no neighbor shortcut (rule 3 off)", 5, false, true},
      {"no descendant routing (rule 5 off)", 5, true, false},
      {"batch=10 (beyond paper)", 10, true, true},
  };

  harness::TablePrinter table({"variant", "data", "total", "owner-hit", "vs full"});
  double full_total = 0;
  for (const Variant& v : variants) {
    harness::ExperimentConfig config = base_config;
    config.max_batch = v.max_batch;
    config.enable_neighbor_shortcut = v.shortcut;
    config.enable_descendant_routing = v.descendants;
    harness::ExperimentResult r = harness::RunExperiment(config);
    if (full_total == 0) full_total = r.total_excl_beacons;
    table.AddRow({v.name, harness::FormatCount(r.data()),
                  harness::FormatCount(r.total_excl_beacons),
                  harness::FormatPercent(r.owner_hit_rate),
                  harness::FormatDouble(r.total_excl_beacons / full_total, 2) + "x"});
  }
  table.Print();
  std::printf(
      "\nWithout rule 5 data for descendants detours through the base; without\n"
      "rule 3 one-hop shortcuts are forfeited; without batching every reading\n"
      "pays full per-packet overhead.\n");
  return 0;
}
