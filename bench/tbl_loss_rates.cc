// E7 -- §6 "Other experiments": loss and success rates.
//
// Paper: data messages are successfully stored ~93% of the time; ~78% of
// query results are retrieved; ~85% of data reaches the owner the index
// designated (the rest falls back to the root); ~40% of summaries are lost
// before reaching the basestation.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

int main() {
  using namespace scoop;
  harness::ExperimentConfig config;
  config.policy = harness::Policy::kScoop;
  config.source = workload::DataSourceKind::kReal;

  std::printf("=== In-text (§6): Scoop loss & success rates ===\n");
  std::printf("paper: storage ~93%%, owner-hit ~85%%, query success ~78%%,\n");
  std::printf("summary delivery ~60%% (40%% lost). Both topology presets.\n\n");

  harness::TablePrinter table({"preset", "stored", "owner-hit", "query-success",
                               "summary-delivery", "%nodes-queried", "queries"});
  for (harness::TopologyPreset preset :
       {harness::TopologyPreset::kTestbed, harness::TopologyPreset::kRandom}) {
    config.preset = preset;
    harness::ExperimentResult r = harness::RunExperiment(config);
    table.AddRow({preset == harness::TopologyPreset::kTestbed ? "testbed" : "random",
                  harness::FormatPercent(r.storage_success),
                  harness::FormatPercent(r.owner_hit_rate),
                  harness::FormatPercent(r.query_success),
                  harness::FormatPercent(r.summary_delivery),
                  harness::FormatPercent(r.avg_pct_nodes_queried),
                  harness::FormatCount(r.queries_issued)});
  }
  table.Print();
  return 0;
}
