// E15 -- google-benchmark microbenchmarks of the hot data structures:
// histogram construction and the P(p->v) estimator, storage-index
// coalescing/lookup/chunking, Trickle timer stepping, Flash scans, and the
// discrete-event queue.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/storage_index.h"
#include "sim/event_queue.h"
#include "storage/flash_store.h"
#include "storage/histogram.h"
#include "trickle/trickle_timer.h"

namespace scoop {
namespace {

void BM_HistogramBuild(benchmark::State& state) {
  Rng rng(1);
  std::vector<Value> readings;
  for (int i = 0; i < 30; ++i) {
    readings.push_back(static_cast<Value>(rng.UniformInt(0, 150)));
  }
  for (auto _ : state) {
    storage::ValueHistogram h = storage::ValueHistogram::Build(readings, 10);
    benchmark::DoNotOptimize(h);
  }
}
BENCHMARK(BM_HistogramBuild);

void BM_HistogramProbability(benchmark::State& state) {
  Rng rng(2);
  std::vector<Value> readings;
  for (int i = 0; i < 30; ++i) {
    readings.push_back(static_cast<Value>(rng.UniformInt(0, 150)));
  }
  storage::ValueHistogram h = storage::ValueHistogram::Build(readings, 10);
  Value v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.ProbabilityOf(v));
    v = (v + 7) % 151;
  }
}
BENCHMARK(BM_HistogramProbability);

core::StorageIndex MakeIndex(int domain, int num_owners) {
  Rng rng(3);
  std::vector<NodeId> owners;
  NodeId current = 1;
  for (int v = 0; v < domain; ++v) {
    if (rng.Bernoulli(0.3)) {
      current = static_cast<NodeId>(rng.UniformInt(0, num_owners - 1));
    }
    owners.push_back(current);
  }
  return core::StorageIndex::FromOwnerArray(1, 0, 0, owners);
}

void BM_StorageIndexCoalesce(benchmark::State& state) {
  int domain = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::StorageIndex index = MakeIndex(domain, 62);
    benchmark::DoNotOptimize(index);
  }
}
BENCHMARK(BM_StorageIndexCoalesce)->Arg(150)->Arg(600);

void BM_StorageIndexLookup(benchmark::State& state) {
  core::StorageIndex index = MakeIndex(150, 62);
  Value v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Lookup(v));
    v = (v + 13) % 150;
  }
}
BENCHMARK(BM_StorageIndexLookup);

void BM_StorageIndexChunkRoundTrip(benchmark::State& state) {
  core::StorageIndex index = MakeIndex(150, 62);
  for (auto _ : state) {
    std::vector<MappingPayload> chunks = index.ToChunks(13);
    benchmark::DoNotOptimize(core::StorageIndex::FromChunks(chunks));
  }
}
BENCHMARK(BM_StorageIndexChunkRoundTrip);

void BM_TrickleSteadyState(benchmark::State& state) {
  Rng rng(4);
  trickle::TrickleOptions options;
  trickle::TrickleTimer timer(options, &rng);
  SimTime next = timer.Start(0);
  for (auto _ : state) {
    auto action = timer.OnEvent(next);
    next = action.next_event;
    benchmark::DoNotOptimize(action.should_broadcast);
  }
}
BENCHMARK(BM_TrickleSteadyState);

void BM_FlashScan(benchmark::State& state) {
  storage::FlashOptions options;
  options.capacity_tuples = static_cast<size_t>(state.range(0));
  storage::FlashStore store(options);
  Rng rng(5);
  for (int i = 0; i < state.range(0); ++i) {
    store.Store({static_cast<NodeId>(rng.UniformInt(1, 62)),
                 static_cast<Value>(rng.UniformInt(0, 150)), Seconds(i)});
  }
  QueryPayload query;
  query.time_lo = 0;
  query.time_hi = Seconds(static_cast<double>(state.range(0)));
  query.ranges.push_back(ValueRange{40, 45});
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Scan(query));
  }
}
BENCHMARK(BM_FlashScan)->Arg(1024)->Arg(16384);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue queue;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      queue.ScheduleAt(i, [&fired] { ++fired; });
    }
    queue.RunUntil(1000);
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EventQueueThroughput);

}  // namespace
}  // namespace scoop

BENCHMARK_MAIN();
