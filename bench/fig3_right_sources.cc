// E3 -- Figure 3 (right): Scoop over the five data sources in simulation:
// unique, equal, real, gaussian, random.
//
// Paper shape: UNIQUE best (perfect locality); EQUAL cheap and with very
// few mapping messages (the basestation suppresses unchanged indices,
// §5.3) while batching amortizes its data packets; RANDOM worst -- no
// predictability, so Scoop degenerates toward BASE/HASH behaviour.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

int main() {
  using namespace scoop;
  harness::ExperimentConfig config;
  config.policy = harness::Policy::kScoop;
  config.preset = harness::TopologyPreset::kRandom;

  std::printf("=== Figure 3 (right): Scoop across data sources, simulation ===\n");
  std::printf("62 nodes + base, 40 min, defaults; averaged over %d trials.\n\n",
              config.trials);

  harness::TablePrinter table({"source", "data", "summary", "mapping", "query+reply",
                               "total", "mappings-suppressed", "owner-hit"});
  for (workload::DataSourceKind source :
       {workload::DataSourceKind::kUnique, workload::DataSourceKind::kEqual,
        workload::DataSourceKind::kReal, workload::DataSourceKind::kGaussian,
        workload::DataSourceKind::kRandom}) {
    config.source = source;
    harness::ExperimentResult r = harness::RunExperiment(config);
    table.AddRow({workload::DataSourceKindName(source), harness::FormatCount(r.data()),
                  harness::FormatCount(r.summary()), harness::FormatCount(r.mapping()),
                  harness::FormatCount(r.query_reply()),
                  harness::FormatCount(r.total_excl_beacons),
                  harness::FormatCount(r.indices_suppressed),
                  harness::FormatPercent(r.owner_hit_rate)});
  }
  table.Print();
  return 0;
}
