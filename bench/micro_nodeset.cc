// Microbenchmarks of the NodeSet query-set codec (the variadic wire format
// that replaced the fixed 16-byte / 128-node query bitmap): encode and
// decode throughput plus the query-path membership matching, across the
// set shapes that matter -- contiguous owner runs (Scoop's common case,
// §5.5), scattered ids, alternating ids (the dense form's worst-friendly
// shape), and the all-nodes flood -- at universes from the legacy 128
// through 10000 nodes. Every bench also reports the encoded size in bytes
// (`wire_bytes`), which is what the airtime accounting charges per query.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "common/node_bitmap.h"
#include "common/node_set.h"
#include "common/rng.h"

namespace scoop {
namespace {

enum Shape : int64_t {
  kOwnerRun = 0,    // One contiguous quarter of the universe.
  kScattered = 1,   // Every 7th id.
  kAlternating = 2, // Every other id.
  kAllNodes = 3,    // The flood set.
};

const char* ShapeName(int64_t shape) {
  switch (shape) {
    case kOwnerRun: return "owner_run";
    case kScattered: return "scattered";
    case kAlternating: return "alternating";
    case kAllNodes: return "all_nodes";
  }
  return "?";
}

NodeSet MakeShape(int64_t shape, int universe) {
  NodeSet set(universe);
  switch (shape) {
    case kOwnerRun:
      for (int id = universe / 4; id < universe / 2; ++id) {
        set.Set(static_cast<NodeId>(id));
      }
      break;
    case kScattered:
      for (int id = 0; id < universe; id += 7) set.Set(static_cast<NodeId>(id));
      break;
    case kAlternating:
      for (int id = 0; id < universe; id += 2) set.Set(static_cast<NodeId>(id));
      break;
    case kAllNodes:
      for (int id = 0; id < universe; ++id) set.Set(static_cast<NodeId>(id));
      break;
  }
  return set;
}

void SetLabel(benchmark::State& state) {
  state.SetLabel(std::string(ShapeName(state.range(0))) + "/N=" +
                 std::to_string(state.range(1)));
}

void BM_NodeSetEncode(benchmark::State& state) {
  NodeSet set = MakeShape(state.range(0), static_cast<int>(state.range(1)));
  std::vector<uint8_t> out;
  for (auto _ : state) {
    out.clear();
    set.EncodeTo(&out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["wire_bytes"] = static_cast<double>(out.size());
  SetLabel(state);
}

void BM_NodeSetDecode(benchmark::State& state) {
  int universe = static_cast<int>(state.range(1));
  NodeSet set = MakeShape(state.range(0), universe);
  std::vector<uint8_t> encoded = set.Encode();
  for (auto _ : state) {
    auto decoded = NodeSet::Decode(encoded.data(), encoded.size(), universe);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["wire_bytes"] = static_cast<double>(encoded.size());
  SetLabel(state);
}

// The per-received-query match: does any of the target set's members fall
// in this node's descendant/neighbor sets? Modeled by an AnyOf walk probing
// a bitmap, early-exiting on the first hit, like
// AgentBase::ShouldRebroadcastQuery.
void BM_NodeSetMatch(benchmark::State& state) {
  int universe = static_cast<int>(state.range(1));
  NodeSet set = MakeShape(state.range(0), universe);
  // Descendants of a mid-tree router: a contiguous-ish clump of ~32 ids
  // around 3/4 of the universe, hit late in ascending AnyOf order.
  DynamicNodeBitmap descendants(universe);
  Rng rng(0x5E7, 0);
  for (int k = 0; k < 32; ++k) {
    int id = universe * 3 / 4 + static_cast<int>(rng.NextU64() % (universe / 8 + 1));
    if (id < universe) descendants.Set(static_cast<NodeId>(id));
  }
  bool hit = false;
  for (auto _ : state) {
    hit = set.AnyOf([&](NodeId id) { return descendants.Test(id); });
    benchmark::DoNotOptimize(hit);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["wire_bytes"] = static_cast<double>(set.WireSize());
  SetLabel(state);
}

const std::vector<std::vector<int64_t>> kShapeByUniverse = {
    {kOwnerRun, kScattered, kAlternating, kAllNodes},
    {128, 1024, 10000},
};

BENCHMARK(BM_NodeSetEncode)->ArgsProduct(kShapeByUniverse);
BENCHMARK(BM_NodeSetDecode)->ArgsProduct(kShapeByUniverse);
BENCHMARK(BM_NodeSetMatch)->ArgsProduct(kShapeByUniverse);

}  // namespace
}  // namespace scoop

BENCHMARK_MAIN();
