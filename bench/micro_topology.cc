// Microbenchmarks of topology generation: the spatial-hash link walk vs
// the brute-force all-pairs reference (ComputeDeliveryDense, retained in
// sim/topology.cc exactly for this comparison and the equivalence test),
// and end-to-end Topology::MakeRandom / MakeGrid at paper scale through
// 10000 nodes. Areas scale with N so physical density -- and therefore
// node degree -- stays constant, matching how micro_radio sizes its
// networks; without that, a 10k-node network at ~20% audibility would
// mean 2000-neighbor nodes no deployment has. The PR-4 acceptance bar is
// MakeRandom at N = 10000 in under one second.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "sim/topology.h"

namespace scoop::sim {
namespace {

RandomTopologyOptions ScaledRandomOptions(int n) {
  RandomTopologyOptions opts;
  opts.num_nodes = n;
  opts.seed = 9;
  // Constant density: scale the 63-node 55x55 area with N and keep the
  // fixed radio range (degree ~ a dozen neighbors at any size). The
  // neighbor-fraction auto-tuner is a small-N notion -- 20% of 10000
  // nodes is not a radio neighborhood -- so it is disabled here.
  double scale = std::sqrt(static_cast<double>(n) / 63.0);
  opts.area_width *= scale;
  opts.area_height *= scale;
  opts.target_neighbor_fraction = 0;
  return opts;
}

std::vector<Point> ScatterPositions(int n, uint64_t seed) {
  Rng rng(seed, /*stream=*/0x6E0);
  double side = 55.0 * std::sqrt(static_cast<double>(n) / 63.0);
  std::vector<Point> positions(static_cast<size_t>(n));
  for (auto& p : positions) {
    p = Point{rng.UniformDouble() * side, rng.UniformDouble() * side};
  }
  return positions;
}

// ---------------------------------------------------------------------------
// Link computation alone: spatial hash vs dense all-pairs, identical
// output (the topology_test equivalence pin).
void BM_ComputeDeliverySpatial(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Point> positions = ScatterPositions(n, /*seed=*/4);
  PropagationOptions prop;
  size_t links = 0;
  for (auto _ : state) {
    auto result = Topology::ComputeDelivery(positions, prop, /*range=*/18.0,
                                            /*link_seed=*/11);
    for (const auto& row : result) links += row.size();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["links"] =
      static_cast<double>(links) / static_cast<double>(std::max<size_t>(1, state.iterations()));
}
BENCHMARK(BM_ComputeDeliverySpatial)->Arg(250)->Arg(1000)->Arg(4000)->Arg(10000);

void BM_ComputeDeliveryDense(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<Point> positions = ScatterPositions(n, /*seed=*/4);
  PropagationOptions prop;
  size_t links = 0;
  for (auto _ : state) {
    auto result = Topology::ComputeDeliveryDense(positions, prop, /*range=*/18.0,
                                                 /*link_seed=*/11);
    for (const auto& row : result) links += row.size();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["links"] =
      static_cast<double>(links) / static_cast<double>(std::max<size_t>(1, state.iterations()));
}
BENCHMARK(BM_ComputeDeliveryDense)->Arg(250)->Arg(1000)->Arg(4000);

// ---------------------------------------------------------------------------
// End-to-end generation, including range growth to connectivity and the
// index build (CSR, interferer bitmaps, dense matrix up to its cap).
void BM_MakeRandom(benchmark::State& state) {
  RandomTopologyOptions opts = ScaledRandomOptions(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Topology topo = Topology::MakeRandom(opts);
    benchmark::DoNotOptimize(topo.num_nodes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MakeRandom)->Arg(63)->Arg(500)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// The default small-N configuration (neighbor-fraction auto-tuning on),
// the regime every harness trial pays at topology setup.
void BM_MakeRandomPaperDefault(benchmark::State& state) {
  RandomTopologyOptions opts;
  opts.num_nodes = static_cast<int>(state.range(0));
  opts.seed = 9;
  for (auto _ : state) {
    Topology topo = Topology::MakeRandom(opts);
    benchmark::DoNotOptimize(topo.num_nodes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MakeRandomPaperDefault)->Arg(63)->Arg(121)->Unit(benchmark::kMillisecond);

void BM_MakeGrid(benchmark::State& state) {
  GridTopologyOptions opts;
  opts.num_nodes = static_cast<int>(state.range(0));
  opts.seed = 9;
  for (auto _ : state) {
    Topology topo = Topology::MakeGrid(opts);
    benchmark::DoNotOptimize(topo.num_nodes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MakeGrid)->Arg(121)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scoop::sim

BENCHMARK_MAIN();
