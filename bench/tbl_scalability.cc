// E9 -- §6 "Other experiments": scalability with network size (the paper
// ran topologies up to 100 nodes in simulation).
//
// Paper shape: the system scales well to 100 nodes with little effect on
// loss rates; Scoop over RANDOM is the most size-sensitive source (data
// travels ever further), other sources much less so.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

int main() {
  using namespace scoop;
  harness::ExperimentConfig config;
  config.policy = harness::Policy::kScoop;
  config.trials = 2;

  std::printf("=== In-text (§6): scalability up to 100 nodes (Scoop) ===\n\n");

  const int sizes[] = {25, 50, 63, 100};
  harness::TablePrinter table({"source", "nodes", "total", "per-node", "stored",
                               "q-success"});
  for (workload::DataSourceKind source :
       {workload::DataSourceKind::kReal, workload::DataSourceKind::kRandom}) {
    config.source = source;
    for (int size : sizes) {
      config.num_nodes = size;
      harness::ExperimentResult r = harness::RunExperiment(config);
      table.AddRow({workload::DataSourceKindName(source), std::to_string(size),
                    harness::FormatCount(r.total_excl_beacons),
                    harness::FormatCount(r.total_excl_beacons / size),
                    harness::FormatPercent(r.storage_success),
                    harness::FormatPercent(r.query_success)});
    }
  }
  table.Print();
  std::printf(
      "\nShape check: success rates stay roughly flat with size; RANDOM's\n"
      "per-node cost grows fastest because readings cross the whole network.\n");
  return 0;
}
