// E8b -- §6 energy claim: "if a node running LOCAL can last for one month
// using a small battery, an average SCOOP node would last for about three
// months, although the battery on the root in SCOOP would have to be
// replaced every two weeks."
//
// We reproduce the *ratios* using the §2.1 energy model (radio ~700 nJ/bit
// tx) over measured per-node byte counts.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

int main() {
  using namespace scoop;

  std::printf("=== In-text (§6): battery-lifetime comparison (REAL, simulation) ===\n");
  std::printf("Lifetime from workload radio bytes (tx + addressed rx, beacons\n");
  std::printf("excluded; the always-on listening floor is common to all policies).\n");

  // The paper's lifetime ratios assume query flooding dominates LOCAL's
  // budget; show both the default workload and a query-heavy one.
  struct OperatingPoint {
    const char* name;
    SimTime query_interval;
  };
  const OperatingPoint points[] = {
      {"default workload (1 query / 15s)", Seconds(15)},
      {"query-heavy workload (1 query / 3s)", Seconds(3)},
  };

  for (const OperatingPoint& point : points) {
    harness::ExperimentConfig config;
    config.source = workload::DataSourceKind::kReal;
    config.query_interval = point.query_interval;

    std::printf("\n--- %s ---\n", point.name);
    double local_avg = 0;
    harness::TablePrinter table({"policy", "avg-node-lifetime", "root-lifetime",
                                 "avg vs LOCAL", "root vs LOCAL-node"});
    harness::ExperimentResult results[3];
    const harness::Policy policies[] = {harness::Policy::kLocal, harness::Policy::kScoop,
                                        harness::Policy::kBase};
    for (int i = 0; i < 3; ++i) {
      config.policy = policies[i];
      results[i] = harness::RunExperiment(config);
      if (policies[i] == harness::Policy::kLocal) {
        local_avg = results[i].avg_node_lifetime_days;
      }
    }
    for (int i = 0; i < 3; ++i) {
      const harness::ExperimentResult& r = results[i];
      table.AddRow({harness::PolicyName(policies[i]),
                    harness::FormatDouble(r.avg_node_lifetime_days, 0) + " days",
                    harness::FormatDouble(r.root_lifetime_days, 0) + " days",
                    harness::FormatDouble(r.avg_node_lifetime_days / local_avg, 2) + "x",
                    harness::FormatDouble(r.root_lifetime_days / local_avg, 2) + "x"});
    }
    table.Print();
  }
  std::printf(
      "\nPaper's claim: SCOOP's average node outlives a LOCAL node ~3x while\n"
      "SCOOP's root lasts ~0.5x of a LOCAL node. The root burden direction\n"
      "reproduces at both operating points; the average-node advantage\n"
      "appears as the query rate grows (LOCAL's budget is all flooding).\n");
  return 0;
}
