// Microbenchmarks of the agent-layer cost model: XmitsEstimator::Build.
// `LegacyXmitsEstimator` is a faithful copy of the seed implementation --
// per-node unordered_map edge lists and a from-scratch all-pairs Dijkstra
// on every Build() -- kept here so the CSR + incremental rework in
// core/xmits_estimator.{h,cc} is benchmarked against it in the same binary
// (the pattern micro_radio and micro_event_queue use). Both variants
// ingest the identical link statistics, so the measured difference is
// purely data-structure and rebuild-avoidance work.
//
// The workload is the basestation's steady-state remap loop (§5.2/§5.3):
// Clear(), re-ingest summary statistics that differ from the previous
// round in only a few links, Build(). The PR-4 acceptance bar is >= 5x
// Build throughput at N = 500.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/xmits_estimator.h"

namespace scoop::core {
namespace {

// ---------------------------------------------------------------------------
// The seed XmitsEstimator, verbatim.
class LegacyXmitsEstimator {
 public:
  explicit LegacyXmitsEstimator(int num_nodes, const XmitsOptions& options = {})
      : num_nodes_(num_nodes), options_(options), edges_(static_cast<size_t>(num_nodes)) {}

  void Clear() {
    for (auto& e : edges_) e.clear();
  }

  void AddLink(NodeId from, NodeId to, double quality) {
    if (from == to) return;
    if (quality < options_.min_quality) return;
    double etx = std::min(1.0 / quality, options_.max_link_etx);
    auto [it, inserted] = edges_[from].try_emplace(to, etx);
    if (!inserted) it->second = std::min(it->second, etx);
  }

  void AddTreeEdge(NodeId node, NodeId parent, double assumed_quality = 0.5) {
    if (node == parent) return;
    if (static_cast<int>(node) >= num_nodes_ || static_cast<int>(parent) >= num_nodes_) {
      return;
    }
    double etx = std::min(1.0 / assumed_quality, options_.max_link_etx);
    edges_[node].try_emplace(parent, etx);
    edges_[parent].try_emplace(node, etx);
  }

  void Build() {
    dist_.assign(static_cast<size_t>(num_nodes_),
                 std::vector<double>(static_cast<size_t>(num_nodes_),
                                     std::numeric_limits<double>::infinity()));
    using Item = std::pair<double, NodeId>;
    for (int s = 0; s < num_nodes_; ++s) {
      auto& dist = dist_[static_cast<size_t>(s)];
      std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
      dist[static_cast<size_t>(s)] = 0;
      heap.emplace(0.0, static_cast<NodeId>(s));
      while (!heap.empty()) {
        auto [d, u] = heap.top();
        heap.pop();
        if (d > dist[u]) continue;
        for (const auto& [v, w] : edges_[u]) {
          double nd = d + w;
          if (nd < dist[v]) {
            dist[v] = nd;
            heap.emplace(nd, v);
          }
        }
      }
    }
  }

  double Xmits(NodeId x, NodeId y) const {
    if (x == y) return 0.0;
    double d = dist_[x][y];
    return std::isinf(d) ? options_.unknown_cost : d;
  }

 private:
  int num_nodes_;
  XmitsOptions options_;
  std::vector<std::unordered_map<NodeId, double>> edges_;
  std::vector<std::vector<double>> dist_;
};

// ---------------------------------------------------------------------------
// Synthetic summary statistics: each node reports ~8 neighbor links (a
// ring + random chords, qualities in [0.2, 0.9]) plus a routing-tree edge,
// the shape HandleSummaryAtBase feeds RebuildXmits. `epoch` perturbs a few
// per-round qualities the way fresh summaries would.
struct LinkStat {
  NodeId from;
  NodeId to;
  double quality;
};

std::vector<LinkStat> MakeStats(int n, uint64_t seed) {
  Rng rng(seed, /*stream=*/0x357A75);
  std::vector<LinkStat> stats;
  for (int i = 1; i < n; ++i) {
    NodeId node = static_cast<NodeId>(i);
    // Ring neighbors (the geometric backbone).
    for (int d : {1, 2}) {
      NodeId nbr = static_cast<NodeId>(1 + (i - 1 + d) % (n - 1));
      if (nbr == node) continue;
      stats.push_back(LinkStat{nbr, node, 0.3 + 0.6 * rng.UniformDouble()});
      stats.push_back(LinkStat{node, nbr, 0.3 + 0.6 * rng.UniformDouble()});
    }
    // Random chords.
    for (int c = 0; c < 4; ++c) {
      NodeId nbr = static_cast<NodeId>(rng.UniformInt(0, n - 1));
      if (nbr == node) continue;
      stats.push_back(LinkStat{nbr, node, 0.2 + 0.7 * rng.UniformDouble()});
    }
  }
  return stats;
}

/// Replays one remap round into either estimator: Clear + full re-ingest
/// with `churn` links re-reported at a different quality.
template <typename EstimatorT>
void IngestRound(EstimatorT& est, const std::vector<LinkStat>& stats, int n, int round,
                 int churn) {
  est.Clear();
  size_t rotate = stats.empty() ? 0 : (static_cast<size_t>(round) * 17) % stats.size();
  for (size_t k = 0; k < stats.size(); ++k) {
    const LinkStat& s = stats[k];
    double q = s.quality;
    // A handful of links re-report better or worse each round, like fresh
    // summaries drifting; everything else is byte-identical.
    if (static_cast<int>((k + rotate) % stats.size()) < churn) {
      q = std::clamp(q + ((round + k) % 2 == 0 ? 0.15 : -0.15), 0.15, 0.95);
    }
    est.AddLink(s.from, s.to, q);
  }
  for (int i = 1; i < n; ++i) {
    est.AddTreeEdge(static_cast<NodeId>(i), static_cast<NodeId>((i - 1) / 2));
  }
}

// ---------------------------------------------------------------------------
// Steady-state remap: the loop ScoopBaseAgent pays every remap_interval.
template <typename EstimatorT>
void BM_SteadyStateRemap(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<LinkStat> stats = MakeStats(n, /*seed=*/7);
  EstimatorT est(n);
  int churn = std::max(2, n / 50);
  IngestRound(est, stats, n, /*round=*/0, churn);
  est.Build();
  int round = 1;
  double checksum = 0;
  for (auto _ : state) {
    IngestRound(est, stats, n, round, churn);
    est.Build();
    checksum += est.Xmits(0, static_cast<NodeId>(n - 1));
    ++round;
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_TEMPLATE(BM_SteadyStateRemap, LegacyXmitsEstimator)->Arg(63)->Arg(121)->Arg(500);
BENCHMARK_TEMPLATE(BM_SteadyStateRemap, XmitsEstimator)->Arg(63)->Arg(121)->Arg(500);

// ---------------------------------------------------------------------------
// Cold build: first Build() after boot, when every row is dirty. Isolates
// the CSR-vs-unordered_map constant factor without rebuild avoidance.
template <typename EstimatorT>
void BM_ColdFullBuild(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<LinkStat> stats = MakeStats(n, /*seed=*/7);
  double checksum = 0;
  for (auto _ : state) {
    EstimatorT est(n);
    IngestRound(est, stats, n, /*round=*/0, /*churn=*/0);
    est.Build();
    checksum += est.Xmits(0, static_cast<NodeId>(n - 1));
  }
  benchmark::DoNotOptimize(checksum);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK_TEMPLATE(BM_ColdFullBuild, LegacyXmitsEstimator)->Arg(63)->Arg(121)->Arg(500);
BENCHMARK_TEMPLATE(BM_ColdFullBuild, XmitsEstimator)->Arg(63)->Arg(121)->Arg(500);

}  // namespace
}  // namespace scoop::core

BENCHMARK_MAIN();
