// E8a -- §6 "Other experiments": load skew at the root node.
//
// Paper (FILE/REAL workload in simulation): the SCOOP root sent ~4,000
// mapping+query messages and received ~8,000 summaries + ~2,000 replies;
// the BASE root received ~24,000 data messages (sending nothing); the
// LOCAL root sent ~2,000 query messages and received ~1,800 replies.
// LOCAL burdens the root least, BASE the most; SCOOP sits between but
// wins on total network cost.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

int main() {
  using namespace scoop;
  harness::ExperimentConfig config;
  config.source = workload::DataSourceKind::kReal;

  std::printf("=== In-text (§6): root-node message skew (REAL, simulation) ===\n\n");

  harness::TablePrinter table({"policy", "root-sent", "root-received", "avg-node-sent",
                               "max-node-sent", "network-total"});
  for (harness::Policy policy :
       {harness::Policy::kScoop, harness::Policy::kLocal, harness::Policy::kBase}) {
    config.policy = policy;
    harness::ExperimentResult r = harness::RunExperiment(config);
    table.AddRow({harness::PolicyName(policy), harness::FormatCount(r.root_sent),
                  harness::FormatCount(r.root_received),
                  harness::FormatCount(r.avg_node_sent),
                  harness::FormatCount(r.max_node_sent),
                  harness::FormatCount(r.total_excl_beacons)});
  }
  table.Print();
  std::printf(
      "\nShape check: BASE's root receives by far the most; LOCAL's root is\n"
      "cheapest; SCOOP adds summary/mapping handling at the root but cuts\n"
      "total network cost.\n");
  return 0;
}
