// E2 -- Figure 3 (middle): simulation results of Scoop compared to LOCAL,
// HASH, and BASE over the REAL data trace. Reproduces the per-policy
// message breakdown (data / summary / mapping / query+reply).
//
// The experiment grid comes from the registered `fig3_middle` scenario, so
// this bench and `scoop_campaign --scenario=fig3_middle` cannot drift
// apart: both expand the same .scn spec.
//
// Paper shape: SCOOP pays summary+mapping overhead but slashes data and
// query/reply traffic, landing well below LOCAL and BASE; HASH ≈ BASE
// because query and data rates are comparable.
#include <cstdio>
#include <cstdlib>

#include "harness/experiment.h"
#include "harness/report.h"
#include "scenario/campaign.h"
#include "scenario/scenario_registry.h"

int main() {
  using namespace scoop;
  Result<scenario::Scenario> scn = scenario::LoadRegisteredScenario("fig3_middle");
  if (!scn.ok()) {
    std::fprintf(stderr, "error: %s\n", scn.status().ToString().c_str());
    return 1;
  }
  Result<std::vector<scenario::ExpandedRun>> runs = scenario::ExpandScenario(scn.value());
  if (!runs.ok()) {
    std::fprintf(stderr, "error: %s\n", runs.status().ToString().c_str());
    return 1;
  }

  std::printf("=== Figure 3 (middle): policies over the REAL trace, simulation ===\n");
  std::printf("62 nodes + base, 40 min (10 min stabilization), sample 1/15s,\n");
  std::printf("query 1/15s over 1-5%% of the domain, averaged over %d trials.\n\n",
              scn.value().base.trials);

  // Run the whole grid first: the "vs scoop" ratio needs the scoop total,
  // and the scenario text controls row order, so don't assume scoop is
  // first.
  std::vector<harness::ExperimentResult> results;
  double scoop_total = 0;
  for (const scenario::ExpandedRun& run : runs.value()) {
    results.push_back(harness::RunExperiment(run.config));
    if (run.config.policy == harness::Policy::kScoop) {
      scoop_total = results.back().total_excl_beacons;
    }
  }

  harness::TablePrinter table({"policy", "data", "summary", "mapping", "query", "reply",
                               "total", "vs scoop"});
  for (size_t i = 0; i < results.size(); ++i) {
    const scenario::ExpandedRun& run = runs.value()[i];
    const harness::ExperimentResult& r = results[i];
    table.AddRow(
        {harness::PolicyName(run.config.policy), harness::FormatCount(r.data()),
         harness::FormatCount(r.summary()), harness::FormatCount(r.mapping()),
         harness::FormatCount(r.sent_by_type[static_cast<size_t>(PacketType::kQuery)]),
         harness::FormatCount(r.sent_by_type[static_cast<size_t>(PacketType::kReply)]),
         harness::FormatCount(r.total_excl_beacons),
         scoop_total > 0
             ? harness::FormatDouble(r.total_excl_beacons / scoop_total, 2) + "x"
             : "n/a"});
  }
  table.Print();
  std::printf(
      "\nHASH uses the paper's analytical model (no any-to-any routing layer);\n"
      "see bench/abl_extensions for the simulated-HASH validation.\n");
  return 0;
}
