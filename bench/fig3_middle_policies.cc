// E2 -- Figure 3 (middle): simulation results of Scoop compared to LOCAL,
// HASH, and BASE over the REAL data trace. Reproduces the per-policy
// message breakdown (data / summary / mapping / query+reply).
//
// Paper shape: SCOOP pays summary+mapping overhead but slashes data and
// query/reply traffic, landing well below LOCAL and BASE; HASH ≈ BASE
// because query and data rates are comparable.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

int main() {
  using namespace scoop;
  harness::ExperimentConfig config;
  config.source = workload::DataSourceKind::kReal;
  config.preset = harness::TopologyPreset::kRandom;

  std::printf("=== Figure 3 (middle): policies over the REAL trace, simulation ===\n");
  std::printf("62 nodes + base, 40 min (10 min stabilization), sample 1/15s,\n");
  std::printf("query 1/15s over 1-5%% of the domain, averaged over %d trials.\n\n",
              config.trials);

  harness::TablePrinter table({"policy", "data", "summary", "mapping", "query", "reply",
                               "total", "vs scoop"});
  double scoop_total = 0;
  for (harness::Policy policy :
       {harness::Policy::kScoop, harness::Policy::kLocal, harness::Policy::kHashAnalytical,
        harness::Policy::kBase}) {
    config.policy = policy;
    harness::ExperimentResult r = harness::RunExperiment(config);
    if (policy == harness::Policy::kScoop) scoop_total = r.total_excl_beacons;
    table.AddRow(
        {harness::PolicyName(policy), harness::FormatCount(r.data()),
         harness::FormatCount(r.summary()), harness::FormatCount(r.mapping()),
         harness::FormatCount(r.sent_by_type[static_cast<size_t>(PacketType::kQuery)]),
         harness::FormatCount(r.sent_by_type[static_cast<size_t>(PacketType::kReply)]),
         harness::FormatCount(r.total_excl_beacons),
         harness::FormatDouble(r.total_excl_beacons / scoop_total, 2) + "x"});
  }
  table.Print();
  std::printf(
      "\nHASH uses the paper's analytical model (no any-to-any routing layer);\n"
      "see bench/abl_extensions for the simulated-HASH validation.\n");
  return 0;
}
