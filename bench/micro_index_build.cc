// E11 -- google-benchmark microbenchmark of the Figure 2 indexing
// algorithm: O(V * n^2) in the domain size V and node count n. The paper
// argues this is "very practical" at V~150, n=62 and for a few hundred
// nodes; this bench verifies the scaling and absolute cost.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/index_builder.h"
#include "core/query_stats.h"
#include "core/xmits_estimator.h"
#include "storage/histogram.h"

namespace scoop::core {
namespace {

/// Builds synthetic inputs: n nodes in a line (so xmits is meaningful),
/// gaussian-ish per-node histograms over a V-value domain.
BuildInputs MakeInputs(int n, int domain, XmitsEstimator* xmits, QueryStats* queries,
                       std::vector<ProducerStats>* producers) {
  Rng rng(42);
  xmits->Clear();
  for (int i = 0; i + 1 < n; ++i) {
    xmits->AddLink(static_cast<NodeId>(i), static_cast<NodeId>(i + 1), 0.7);
    xmits->AddLink(static_cast<NodeId>(i + 1), static_cast<NodeId>(i), 0.7);
  }
  xmits->Build();

  producers->clear();
  for (int i = 1; i < n; ++i) {
    std::vector<Value> readings;
    Value mean = static_cast<Value>(rng.UniformInt(0, domain - 1));
    for (int s = 0; s < 30; ++s) {
      Value v = static_cast<Value>(
          std::clamp<int64_t>(mean + rng.UniformInt(-5, 5), 0, domain - 1));
      readings.push_back(v);
    }
    ProducerStats p;
    p.id = static_cast<NodeId>(i);
    p.histogram = storage::ValueHistogram::Build(readings, 10);
    p.rate = 1.0 / 15.0;
    producers->push_back(std::move(p));
  }

  queries->RecordQuery({ValueRange{0, static_cast<Value>(domain / 20)}}, Seconds(1));

  BuildInputs inputs;
  inputs.domain_lo = 0;
  inputs.domain_hi = static_cast<Value>(domain - 1);
  inputs.producers = *producers;
  inputs.xmits = xmits;
  inputs.query_stats = queries;
  inputs.base = 0;
  inputs.now = Seconds(2);
  for (int i = 0; i < n; ++i) inputs.candidates.push_back(static_cast<NodeId>(i));
  return inputs;
}

void BM_IndexBuild(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int domain = static_cast<int>(state.range(1));
  XmitsEstimator xmits(n);
  QueryStats queries;
  std::vector<ProducerStats> producers;
  BuildInputs inputs = MakeInputs(n, domain, &xmits, &queries, &producers);
  IndexBuilderOptions options;
  IndexId id = 1;
  for (auto _ : state) {
    BuildResult result = IndexBuilder::Build(inputs, options, id++);
    benchmark::DoNotOptimize(result.index);
  }
  state.SetLabel("V=" + std::to_string(domain) + " n=" + std::to_string(n));
}

// The paper's operating point and the scaling claim up to a few hundred
// nodes.
BENCHMARK(BM_IndexBuild)
    ->Args({62, 150})    // Paper: n=62, V~150.
    ->Args({16, 150})
    ->Args({32, 150})
    ->Args({128, 150})
    ->Args({62, 50})
    ->Args({62, 300})
    ->Args({62, 600})
    ->Unit(benchmark::kMillisecond);

void BM_IndexBuildOwnerSets(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  XmitsEstimator xmits(62);
  QueryStats queries;
  std::vector<ProducerStats> producers;
  BuildInputs inputs = MakeInputs(62, 150, &xmits, &queries, &producers);
  IndexBuilderOptions options;
  options.owner_set_size = k;
  IndexId id = 1;
  for (auto _ : state) {
    BuildResult result = IndexBuilder::Build(inputs, options, id++);
    benchmark::DoNotOptimize(result.index);
  }
  state.SetLabel("owner_set_size=" + std::to_string(k));
}

// The naive owner-set algorithm is exponential; the greedy one stays
// polynomial -- this shows its actual cost growth.
BENCHMARK(BM_IndexBuildOwnerSets)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_XmitsAllPairs(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7);
  XmitsEstimator xmits(n);
  for (int i = 0; i < n; ++i) {
    for (int d = 1; d <= 6; ++d) {
      int j = (i + d) % n;
      xmits.AddLink(static_cast<NodeId>(i), static_cast<NodeId>(j),
                    0.3 + 0.5 * rng.UniformDouble());
    }
  }
  for (auto _ : state) {
    xmits.Build();
    benchmark::DoNotOptimize(xmits.Xmits(0, static_cast<NodeId>(n - 1)));
  }
}

BENCHMARK(BM_XmitsAllPairs)->Arg(62)->Arg(128)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace scoop::core

BENCHMARK_MAIN();
