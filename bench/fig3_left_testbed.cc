// E1 -- Figure 3 (left): message breakdown per storage method on the
// testbed topology: scoop/unique, scoop/gaussian, local/gaussian,
// base/gaussian.
//
// Paper shape: scoop/unique performs best (each node produces its own id,
// so the index is near-perfect and data stays local); scoop/gaussian
// outperforms LOCAL and BASE; BASE is pure data traffic; LOCAL is pure
// query+reply traffic.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

int main() {
  using namespace scoop;
  harness::ExperimentConfig config;
  config.preset = harness::TopologyPreset::kTestbed;

  std::printf("=== Figure 3 (left): storage methods on the 62-node testbed ===\n");
  std::printf("40 min runs (10 min stabilization), defaults per the paper's table,\n");
  std::printf("averaged over %d trials.\n\n", config.trials);

  struct Row {
    harness::Policy policy;
    workload::DataSourceKind source;
  };
  const Row rows[] = {
      {harness::Policy::kScoop, workload::DataSourceKind::kUnique},
      {harness::Policy::kScoop, workload::DataSourceKind::kGaussian},
      {harness::Policy::kLocal, workload::DataSourceKind::kGaussian},
      {harness::Policy::kBase, workload::DataSourceKind::kGaussian},
  };

  harness::TablePrinter table({"method/source", "data", "summary", "mapping",
                               "query+reply", "total", "stored", "q-success"});
  for (const Row& row : rows) {
    config.policy = row.policy;
    config.source = row.source;
    harness::ExperimentResult r = harness::RunExperiment(config);
    std::string label = std::string(harness::PolicyName(row.policy)) + "/" +
                        workload::DataSourceKindName(row.source);
    table.AddRow({label, harness::FormatCount(r.data()), harness::FormatCount(r.summary()),
                  harness::FormatCount(r.mapping()), harness::FormatCount(r.query_reply()),
                  harness::FormatCount(r.total_excl_beacons),
                  harness::FormatPercent(r.storage_success),
                  harness::FormatPercent(r.query_success)});
  }
  table.Print();
  return 0;
}
