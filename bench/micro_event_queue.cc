// Microbenchmarks of the discrete-event queue hot path: steady-state
// schedule/run churn, the schedule/cancel/run mix that Trickle timers and
// radio timeouts generate, and a cancel-heavy soak that exercises heap
// compaction. `LegacyEventQueue` is a faithful copy of the seed
// implementation (std::function callbacks boxed per event, an
// unordered_map<EventId, Callback> insert/find/erase per event, and lazy
// cancellation that never reclaims heap entries), kept here so the slab/
// generation rework in sim/event_queue.{h,cc} is benchmarked against it in
// the same binary. The PR-1 acceptance bar is >= 1.5x on the mixed
// workload.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.h"

namespace scoop {
namespace {

// ---------------------------------------------------------------------------
// The seed EventQueue, verbatim (minus the SCOOP_CHECKs, which compile to
// branches both variants would pay equally and are irrelevant to the
// allocation/locality behavior under test).
class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;

  LegacyEventQueue() = default;

  sim::EventId ScheduleAt(SimTime at, Callback fn) {
    sim::EventId id = next_id_++;
    heap_.push(HeapEntry{at, id});
    pending_.emplace(id, std::move(fn));
    return id;
  }

  sim::EventId ScheduleAfter(SimTime delay, Callback fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  void Cancel(sim::EventId id) { pending_.erase(id); }

  SimTime now() const { return now_; }
  size_t size() const { return pending_.size(); }

  bool RunOne() {
    while (!heap_.empty()) {
      HeapEntry top = heap_.top();
      heap_.pop();
      auto it = pending_.find(top.id);
      if (it == pending_.end()) continue;  // Cancelled.
      Callback fn = std::move(it->second);
      pending_.erase(it);
      now_ = top.at;
      ++processed_;
      fn();
      return true;
    }
    return false;
  }

  size_t processed() const { return processed_; }

 private:
  struct HeapEntry {
    SimTime at;
    sim::EventId id;
    bool operator>(const HeapEntry& other) const {
      if (at != other.at) return at > other.at;
      return id > other.id;
    }
  };

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>> heap_;
  std::unordered_map<sim::EventId, Callback> pending_;
  SimTime now_ = 0;
  sim::EventId next_id_ = 1;
  size_t processed_ = 0;
};

// Deterministic delay pattern (xorshift), identical across queue variants.
struct DelayGen {
  uint64_t state = 0x9e3779b97f4a7c15ull;
  SimTime Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<SimTime>(state % 997 + 1);
  }
};

// EventQueue pinned to one tier configuration, so the two-tier wheel+heap
// default and the heap-only fallback run side by side in one binary.
struct WheelEventQueue : sim::EventQueue {
  WheelEventQueue() : sim::EventQueue(sim::QueueImpl::kWheel) {}
};
struct HeapOnlyEventQueue : sim::EventQueue {
  HeapOnlyEventQueue() : sim::EventQueue(sim::QueueImpl::kHeap) {}
};

// ---------------------------------------------------------------------------
// Steady-state churn: a window of pending events; each iteration runs the
// earliest and schedules a replacement. Callbacks carry a radio.cc-sized
// capture (this-pointer plus three 64-bit values), which overflows
// std::function's 16-byte inline buffer but fits SmallCallback's.
template <typename Queue>
void BM_ScheduleRunChurn(benchmark::State& state) {
  Queue q;
  DelayGen delays;
  uint64_t sink = 0;
  const int window = static_cast<int>(state.range(0));
  for (int i = 0; i < window; ++i) {
    uint64_t a = i, b = i + 1, c = i + 2;
    q.ScheduleAfter(delays.Next(), [&sink, a, b, c] { sink += a + b + c; });
  }
  for (auto _ : state) {
    q.RunOne();
    uint64_t a = sink, b = sink + 1, c = sink + 2;
    q.ScheduleAfter(delays.Next(), [&sink, a, b, c] { sink += a ^ b ^ c; });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_ScheduleRunChurn, LegacyEventQueue)->Arg(1024);
BENCHMARK_TEMPLATE(BM_ScheduleRunChurn, sim::EventQueue)->Arg(1024);

// ---------------------------------------------------------------------------
// The acceptance workload: a schedule/cancel/run mix. Each iteration
// schedules two events, cancels an aged one (as retransmission timeouts
// do) and replaces it, and runs one -- so the pending window stays stable
// and every iteration pays one of each hot-path operation.
template <typename Queue>
void BM_MixedScheduleCancelRun(benchmark::State& state) {
  Queue q;
  DelayGen delays;
  uint64_t sink = 0;
  const int window = static_cast<int>(state.range(0));
  std::vector<sim::EventId> aged(static_cast<size_t>(window), sim::kInvalidEventId);
  size_t cursor = 0;
  for (int i = 0; i < window; ++i) {
    uint64_t a = i, b = i + 1, c = i + 2;
    aged[static_cast<size_t>(i)] =
        q.ScheduleAfter(delays.Next(), [&sink, a, b, c] { sink += a + b + c; });
  }
  for (auto _ : state) {
    uint64_t a = sink, b = sink + 1, c = sink + 2;
    q.ScheduleAfter(delays.Next(), [&sink, a, b, c] { sink += a ^ b ^ c; });
    q.Cancel(aged[cursor]);
    aged[cursor] =
        q.ScheduleAfter(delays.Next(), [&sink, a, b, c] { sink += a + b - c; });
    cursor = (cursor + 1) % aged.size();
    q.RunOne();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_MixedScheduleCancelRun, LegacyEventQueue)->Arg(256);
BENCHMARK_TEMPLATE(BM_MixedScheduleCancelRun, sim::EventQueue)->Arg(256);

// ---------------------------------------------------------------------------
// Trickle soak: N timers that each cancel and reschedule every round, with
// one event run per round. In the legacy queue every cancel strands a heap
// entry, so the heap grows without bound; the reworked queue compacts.
template <typename Queue>
void BM_TrickleCancelReschedule(benchmark::State& state) {
  Queue q;
  DelayGen delays;
  uint64_t sink = 0;
  const int timers = static_cast<int>(state.range(0));
  std::vector<sim::EventId> pending(static_cast<size_t>(timers));
  for (int i = 0; i < timers; ++i) {
    pending[static_cast<size_t>(i)] =
        q.ScheduleAfter(delays.Next(), [&sink] { ++sink; });
  }
  size_t cursor = 0;
  for (auto _ : state) {
    q.Cancel(pending[cursor]);
    pending[cursor] = q.ScheduleAfter(delays.Next(), [&sink] { ++sink; });
    cursor = (cursor + 1) % pending.size();
    if (cursor == 0) q.RunOne();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_TrickleCancelReschedule, LegacyEventQueue)->Arg(64);
BENCHMARK_TEMPLATE(BM_TrickleCancelReschedule, sim::EventQueue)->Arg(64);

// ---------------------------------------------------------------------------
// MAC-backoff churn: N contending senders, each holding one pending CSMA
// backoff timer drawn from the radio's binary-exponential distribution
// (fresh window [8, 16) ms, doubling per busy attempt, capped at 64 ms --
// radio_options.h defaults). Most timers are cancelled before they fire
// (the channel went busy again) and re-armed with the next window; one in
// eight rounds runs the due timer instead. Every delay lands inside the
// wheel's ~1 s horizon, so this is the workload the wheel exists for.
struct BackoffGen {
  uint64_t state = 0x243f6a8885a308d3ull;
  uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  /// Uniform draw in [w/2, w) for the 1-based attempt's window.
  SimTime Draw(int attempt) {
    SimTime w = 16000 << (attempt - 1);  // us; fresh window tops at 16 ms.
    if (w > 64000) w = 64000;            // BEB cap.
    return w / 2 + static_cast<SimTime>(Next() % static_cast<uint64_t>(w / 2));
  }
};

template <typename Queue>
void BM_MacBackoffChurn(benchmark::State& state) {
  Queue q;
  BackoffGen rng;
  uint64_t sink = 0;
  const int n = static_cast<int>(state.range(0));
  std::vector<sim::EventId> timer(static_cast<size_t>(n));
  std::vector<uint8_t> attempt(static_cast<size_t>(n), 1);
  for (int i = 0; i < n; ++i) {
    timer[static_cast<size_t>(i)] = q.ScheduleAfter(rng.Draw(1), [&sink] { ++sink; });
  }
  size_t cursor = 0;
  for (auto _ : state) {
    if ((cursor & 7) == 7) {
      // The channel cleared: run the due timer; its sender re-arms fresh.
      if (q.RunOne()) q.ScheduleAfter(rng.Draw(1), [&sink] { ++sink; });
    } else {
      // Busy again: cancel the pending backoff before it fires and re-arm
      // with the doubled window -- the dominant MAC churn pattern.
      q.Cancel(timer[cursor]);
      uint8_t& a = attempt[cursor];
      a = a >= 4 ? 1 : static_cast<uint8_t>(a + 1);
      timer[cursor] = q.ScheduleAfter(rng.Draw(a), [&sink] { ++sink; });
    }
    cursor = (cursor + 1) % static_cast<size_t>(n);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_TEMPLATE(BM_MacBackoffChurn, LegacyEventQueue)->Arg(128)->Arg(1024)->Arg(8192);
BENCHMARK_TEMPLATE(BM_MacBackoffChurn, HeapOnlyEventQueue)->Arg(128)->Arg(1024)->Arg(8192);
BENCHMARK_TEMPLATE(BM_MacBackoffChurn, WheelEventQueue)->Arg(128)->Arg(1024)->Arg(8192);

}  // namespace
}  // namespace scoop

BENCHMARK_MAIN();
