// E6 -- §6 "Other experiments": cost of Scoop on different data sources as
// the sample interval increases (data rate decreases).
//
// Paper shape: with less data stored, the differences between data sources
// become less pronounced because queries, mappings, and summaries dominate
// the cost.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

int main() {
  using namespace scoop;
  harness::ExperimentConfig config;
  config.policy = harness::Policy::kScoop;

  std::printf("=== In-text (§6): Scoop cost vs sample interval, per data source ===\n\n");

  const int intervals_s[] = {5, 15, 30, 60};
  harness::TablePrinter table(
      {"source", "sample-interval", "data", "overhead(sum+map+qr)", "total"});
  for (workload::DataSourceKind source :
       {workload::DataSourceKind::kUnique, workload::DataSourceKind::kReal,
        workload::DataSourceKind::kGaussian, workload::DataSourceKind::kRandom}) {
    config.source = source;
    for (int interval : intervals_s) {
      config.sample_interval = Seconds(interval);
      harness::ExperimentResult r = harness::RunExperiment(config);
      double overhead = r.summary() + r.mapping() + r.query_reply();
      table.AddRow({workload::DataSourceKindName(source), std::to_string(interval) + "s",
                    harness::FormatCount(r.data()), harness::FormatCount(overhead),
                    harness::FormatCount(r.total_excl_beacons)});
    }
  }
  table.Print();
  std::printf(
      "\nShape check: at long sample intervals the fixed overhead dominates\n"
      "and per-source differences wash out.\n");
  return 0;
}
