// E4 -- Figure 4: total cost as a function of the percentage of nodes
// queried, for SCOOP / LOCAL / BASE over the REAL trace.
//
// The x-axis is driven by node-list queries (§5.5: "a user can query
// values from one or more specific nodes"), which directly control how
// many nodes each query contacts without perturbing the value statistics.
//
// Paper shape: LOCAL is flat and high (it always floods all nodes); BASE
// is flat (queries are free); SCOOP grows with selectivity, beating both
// until roughly 60% of the nodes are queried, after which it becomes
// slightly more expensive than BASE.
#include <cstdio>

#include "harness/experiment.h"
#include "harness/report.h"

int main() {
  using namespace scoop;
  harness::ExperimentConfig config;
  config.source = workload::DataSourceKind::kReal;
  config.query_mode = harness::ExperimentConfig::QueryMode::kNodeList;

  std::printf("=== Figure 4: cost vs %% of nodes queried (REAL, simulation) ===\n\n");

  const double fractions[] = {0.05, 0.10, 0.20, 0.40, 0.60, 0.80, 1.0};

  harness::TablePrinter table({"policy", "%nodes-queried", "total-messages"});
  for (harness::Policy policy :
       {harness::Policy::kScoop, harness::Policy::kLocal, harness::Policy::kBase}) {
    config.policy = policy;
    for (double fraction : fractions) {
      config.node_list_fraction = fraction;
      harness::ExperimentResult r = harness::RunExperiment(config);
      table.AddRow({harness::PolicyName(policy), harness::FormatPercent(fraction, 0),
                    harness::FormatCount(r.total_excl_beacons)});
    }
  }
  table.Print();
  std::printf(
      "\nLOCAL floods every query regardless of the list; BASE answers from\n"
      "its own store for free. SCOOP's cost rises with the number of nodes\n"
      "asked and crosses BASE in the upper selectivity range.\n");
  return 0;
}
