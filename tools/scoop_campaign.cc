// scoop_campaign: multi-threaded campaign runner over declarative .scn
// scenarios.
//
//   scoop_campaign --list
//   scoop_campaign --print=fig3_middle            > mine.scn
//   scoop_campaign --scenario=fig3_middle --threads=8
//   scoop_campaign --file=mine.scn --csv=out.csv --json=out.jsonl
//
// Expands the scenario's sweep axes into a (combo x seed) grid, shards it
// across worker threads, and prints the bench-style summary table; --csv
// and --json additionally write machine-readable reports. Output is
// byte-identical at any thread count.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "scenario/campaign.h"
#include "scenario/campaign_reporter.h"
#include "scenario/scenario_parser.h"
#include "scenario/scenario_registry.h"

#include "cli_flags.h"

namespace {

using namespace scoop;
using scoop::tools::MatchFlag;

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--scenario=NAME | --file=PATH.scn)\n"
               "          [--threads=N]      worker threads (0 = all hardware threads)\n"
               "          [--shards=K]       override the scenario's engine sharding\n"
               "                             (1 = sequential, >=2 = K-way parallel, 0 = auto)\n"
               "          [--queue=wheel|heap] override the scenario's event-queue impl\n"
               "                             (results identical; wheel is the fast default)\n"
               "          [--partition=strip|mincut] override the shard partitioner\n"
               "                             (results identical; mincut cuts sync stalls)\n"
               "          [--csv=PATH]       write per-trial + mean rows as CSV\n"
               "          [--json=PATH]      write per-combo JSON-lines\n"
               "          [--perf-json=PATH] write wall-clock/events-per-second perf report\n"
               "          [--trace-out=PATH] Chrome-trace JSON per (combo, trial)\n"
               "          [--metrics-out=PATH] metrics JSONL per (combo, trial)\n"
               "          [--metrics-interval=S] metrics sampling grid (sim seconds)\n"
               "          [--profile]        attach the wall-clock sim profiler\n"
               "          [-v | -vv]         info / debug logging to stderr\n"
               "          [--quiet]          suppress the summary table\n"
               "       %s --list             list registered scenarios\n"
               "       %s --print=NAME      dump a registered scenario's .scn text\n",
               argv0, argv0, argv0);
  std::exit(2);
}

int ListScenarios() {
  size_t count = 0;
  const scenario::RegistryEntry* entries = scenario::RegisteredScenarios(&count);
  for (size_t i = 0; i < count; ++i) {
    Result<scenario::Scenario> parsed = scenario::LoadRegisteredScenario(entries[i].name);
    std::printf("%-22s %s\n", entries[i].name,
                parsed.ok() ? parsed.value().description.c_str() : "<parse error>");
  }
  return 0;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name;
  std::string file_path;
  std::string csv_path;
  std::string json_path;
  std::string perf_json_path;
  int threads = 0;
  std::string shards_override;
  std::string queue_override;
  std::string partition_override;
  bool quiet = false;
  int verbosity = 0;
  // (key, value) pairs applied to the scenario's base config after parsing,
  // through the same table the .scn obs.* keys use.
  std::vector<std::pair<std::string, std::string>> obs_overrides;

  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    const char* arg = argv[i];
    if (MatchFlag(arg, "--list", &value)) {
      return ListScenarios();
    } else if (MatchFlag(arg, "--print", &value) && value != nullptr) {
      const char* spec = scenario::FindRegisteredSpec(value);
      if (spec == nullptr) {
        std::fprintf(stderr, "error: no registered scenario named '%s' (try --list)\n", value);
        return 1;
      }
      std::fputs(spec + (spec[0] == '\n' ? 1 : 0), stdout);
      return 0;
    } else if (MatchFlag(arg, "--scenario", &value) && value != nullptr) {
      scenario_name = value;
    } else if (MatchFlag(arg, "--file", &value) && value != nullptr) {
      file_path = value;
    } else if (MatchFlag(arg, "--threads", &value) && value != nullptr) {
      char* end = nullptr;
      long parsed = std::strtol(value, &end, 10);
      if (*value == '\0' || *end != '\0' || parsed < 0 || parsed > 4096) {
        std::fprintf(stderr, "bad --threads value '%s' (expected 0..4096)\n", value);
        Usage(argv[0]);
      }
      threads = static_cast<int>(parsed);
    } else if (MatchFlag(arg, "--shards", &value) && value != nullptr) {
      shards_override = value;
    } else if (MatchFlag(arg, "--queue", &value) && value != nullptr) {
      queue_override = value;
    } else if (MatchFlag(arg, "--partition", &value) && value != nullptr) {
      partition_override = value;
    } else if (MatchFlag(arg, "--csv", &value) && value != nullptr) {
      csv_path = value;
    } else if (MatchFlag(arg, "--json", &value) && value != nullptr) {
      json_path = value;
    } else if (MatchFlag(arg, "--perf-json", &value) && value != nullptr) {
      perf_json_path = value;
    } else if (MatchFlag(arg, "--trace-out", &value) && value != nullptr) {
      obs_overrides.emplace_back("obs.trace_out", value);
    } else if (MatchFlag(arg, "--metrics-out", &value) && value != nullptr) {
      obs_overrides.emplace_back("obs.metrics_out", value);
    } else if (MatchFlag(arg, "--metrics-interval", &value) && value != nullptr) {
      obs_overrides.emplace_back("obs.metrics_interval_seconds", value);
    } else if (MatchFlag(arg, "--profile", &value)) {
      obs_overrides.emplace_back("obs.profile", "true");
    } else if (std::strcmp(arg, "-v") == 0) {
      verbosity = 1;
    } else if (std::strcmp(arg, "-vv") == 0) {
      verbosity = 2;
    } else if (MatchFlag(arg, "--quiet", &value)) {
      quiet = true;
    } else {
      Usage(argv[0]);
    }
  }
  SetLogLevel(LogLevelForVerbosity(verbosity));
  if (scenario_name.empty() == file_path.empty()) Usage(argv[0]);  // Exactly one source.

  Result<scenario::Scenario> parsed = [&]() -> Result<scenario::Scenario> {
    if (!scenario_name.empty()) return scenario::LoadRegisteredScenario(scenario_name);
    std::ifstream in(file_path, std::ios::binary);
    if (!in) return Status::NotFound("cannot open " + file_path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return scenario::ParseScenario(buf.str(), file_path);
  }();
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  scenario::Scenario scn = std::move(parsed).value();
  if (!shards_override.empty()) {
    Status s = scenario::ApplyScenarioKey(&scn.base, "shards", shards_override);
    if (!s.ok()) {
      std::fprintf(stderr, "bad --shards value: %s\n", s.message().c_str());
      Usage(argv[0]);
    }
  }
  if (!queue_override.empty()) {
    Status s = scenario::ApplyScenarioKey(&scn.base, "queue", queue_override);
    if (!s.ok()) {
      std::fprintf(stderr, "bad --queue value: %s\n", s.message().c_str());
      Usage(argv[0]);
    }
  }
  if (!partition_override.empty()) {
    Status s = scenario::ApplyScenarioKey(&scn.base, "partition", partition_override);
    if (!s.ok()) {
      std::fprintf(stderr, "bad --partition value: %s\n", s.message().c_str());
      Usage(argv[0]);
    }
  }
  for (const auto& [key, value] : obs_overrides) {
    Status s = scenario::ApplyScenarioKey(&scn.base, key, value);
    if (!s.ok()) {
      std::fprintf(stderr, "bad --%s value: %s\n", key.c_str(), s.message().c_str());
      Usage(argv[0]);
    }
  }

  scenario::CampaignOptions options;
  options.threads = threads;
  Result<scenario::CampaignResult> campaign = scenario::RunCampaign(scn, options);
  if (!campaign.ok()) {
    std::fprintf(stderr, "error: %s\n", campaign.status().ToString().c_str());
    return 1;
  }
  const scenario::CampaignResult& result = campaign.value();

  if (!quiet) {
    size_t total_trials = 0;
    for (const scenario::CampaignRow& row : result.rows) total_trials += row.trials.size();
    std::printf("scenario %s: %s\n", result.scenario_name.c_str(),
                result.description.empty() ? "(no description)" : result.description.c_str());
    double events = 0;
    for (const scenario::CampaignRow& row : result.rows) {
      for (const auto& trial : row.trials) events += trial.sim_events;
    }
    std::printf("%zu combos x trials = %zu runs on %d thread%s"
                " (%.2fs wall, %.0f events/s)\n\n",
                result.rows.size(), total_trials, result.threads_used,
                result.threads_used == 1 ? "" : "s", result.wall_seconds,
                result.wall_seconds > 0 ? events / result.wall_seconds : 0.0);
    std::fputs(scenario::CampaignTable(result).c_str(), stdout);
  }
  if (!csv_path.empty() && !WriteFile(csv_path, scenario::CampaignCsv(result))) return 1;
  if (!json_path.empty() && !WriteFile(json_path, scenario::CampaignJsonLines(result))) {
    return 1;
  }
  if (!perf_json_path.empty() &&
      !WriteFile(perf_json_path, scenario::CampaignPerfJson(result))) {
    return 1;
  }
  return 0;
}
