#!/usr/bin/env bash
# Standing perf harness: runs the radio, event-queue, xmits-estimator,
# topology, and node-set-codec microbenchmarks plus the campaign perf
# probes (wall-clock / events-per-second, sharded scaling points, and a
# sim-profiler bucket breakdown), and merges everything into one
# BENCH_radio.json so the perf trajectory is machine-tracked across PRs.
# Compare two points with tools/bench_compare.py.
#
# Usage: tools/bench_json.sh [build-dir] [output.json]
#   build-dir   defaults to build-release (cmake --preset release)
#   output.json defaults to BENCH_radio.json in the repo root
# Environment:
#   BENCH_MIN_TIME  google-benchmark min seconds per bench (default 0.2;
#                   CI smoke uses 0.05)
#   BENCH_FILTER    optional --benchmark_filter regex forwarded to all
#                   microbenchmark binaries
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-build-release}"
out="${2:-${repo_root}/BENCH_radio.json}"
min_time="${BENCH_MIN_TIME:-0.2}"
filter="${BENCH_FILTER:-}"

bench_dir="${repo_root}/${build_dir}/bench"
tools_dir="${repo_root}/${build_dir}/tools"
micro_benches=(micro_radio micro_event_queue micro_xmits micro_topology micro_nodeset)
for name in "${micro_benches[@]}"; do
  if [[ ! -x "${bench_dir}/bench_${name}" ]]; then
    echo "error: ${bench_dir}/bench_${name} not built (run: cmake --preset release && cmake --build --preset release)" >&2
    exit 1
  fi
done
if [[ ! -x "${tools_dir}/scoop_campaign" ]]; then
  echo "error: ${tools_dir}/scoop_campaign not built" >&2
  exit 1
fi

tmp="$(mktemp -d)"
trap 'rm -rf "${tmp}"' EXIT

bench_args=(--benchmark_min_time="${min_time}" --benchmark_out_format=json)
[[ -n "${filter}" ]] && bench_args+=(--benchmark_filter="${filter}")

for name in "${micro_benches[@]}"; do
  "${bench_dir}/bench_${name}" "${bench_args[@]}" \
      --benchmark_out="${tmp}/${name}.json" >&2
done
# Campaign probes: smoke_tiny (2 nodes, seconds of sim time) keeps the old
# trajectory comparable; grid_dense (121-node lattice, three policies) is
# the mid-scale probe; grid_1024 (32x32 lattice, Scoop policy) is the
# first agent-level point past the old 128-node query-bitmap cap;
# churn_reboot exercises the fault-injection path (reboot waves + orphan
# re-homing + retries + query re-issue), so fault-plan overhead is tracked
# on the same trajectory as the fault-free probes.
"${tools_dir}/scoop_campaign" --scenario=smoke_tiny --threads=1 --quiet \
    --perf-json="${tmp}/campaign_smoke.json"
"${tools_dir}/scoop_campaign" --scenario=grid_dense --threads=1 --quiet \
    --perf-json="${tmp}/campaign_grid_dense.json"
"${tools_dir}/scoop_campaign" --scenario=grid_1024 --threads=1 --quiet \
    --perf-json="${tmp}/campaign_grid_1024.json"
"${tools_dir}/scoop_campaign" --scenario=churn_reboot --threads=1 --quiet \
    --perf-json="${tmp}/campaign_churn_reboot.json"
# Sharded scaling probes: the same 1024-node lattice split across K
# parallel shards (conservative PDES engine). Tracks single-trial
# strong-scaling; shards=1 above stays the sequential-engine baseline.
shard_counts="${BENCH_SHARD_COUNTS:-2 4 8}"
for k in ${shard_counts}; do
  "${tools_dir}/scoop_campaign" --scenario=grid_1024 --threads=1 \
      --shards="${k}" --quiet \
      --perf-json="${tmp}/campaign_grid_1024_shards${k}.json"
done
# The same scaling points under the min-cut partitioner: identical results
# by contract (equivalence suite), but fewer boundary links means fewer
# mirrored frames and shorter EPT stalls -- the delta vs the strip probes
# above is the partitioner's whole value, so both stay on the trajectory.
for k in ${shard_counts}; do
  "${tools_dir}/scoop_campaign" --scenario=grid_1024 --threads=1 \
      --shards="${k}" --partition=mincut --quiet \
      --perf-json="${tmp}/campaign_grid_1024_mincut_shards${k}.json"
done
# Profiled grid_1024: same probe with the sim profiler attached, so the
# perf point records where the wall time actually goes (queue vs radio vs
# agent buckets; see the "MAC timer churn" ROADMAP hypothesis). A separate
# section: the unprofiled probe above stays the clean throughput number,
# and bench_compare.py diffs the buckets informationally.
"${tools_dir}/scoop_campaign" --scenario=grid_1024 --threads=1 --profile \
    --quiet --perf-json="${tmp}/campaign_grid_1024_profile.json"

commit="$(git -C "${repo_root}" rev-parse --short HEAD 2>/dev/null || echo unknown)"

python3 - "${tmp}" "${out}" "${commit}" "${min_time}" "${shard_counts}" <<'EOF'
import json
import sys

tmp, out, commit, min_time, shard_counts = sys.argv[1:6]
doc = {
    "schema": "scoop-bench-v1",
    "commit": commit,
    "benchmark_min_time_seconds": float(min_time),
    "micro_radio": json.load(open(f"{tmp}/micro_radio.json")),
    "micro_event_queue": json.load(open(f"{tmp}/micro_event_queue.json")),
    "micro_xmits": json.load(open(f"{tmp}/micro_xmits.json")),
    "micro_topology": json.load(open(f"{tmp}/micro_topology.json")),
    "micro_nodeset": json.load(open(f"{tmp}/micro_nodeset.json")),
    "campaign_smoke": json.load(open(f"{tmp}/campaign_smoke.json")),
    "campaign_grid_dense": json.load(open(f"{tmp}/campaign_grid_dense.json")),
    "campaign_grid_1024": json.load(open(f"{tmp}/campaign_grid_1024.json")),
    "campaign_churn_reboot": json.load(open(f"{tmp}/campaign_churn_reboot.json")),
    "campaign_grid_1024_profile": json.load(
        open(f"{tmp}/campaign_grid_1024_profile.json")),
}
for k in shard_counts.split():
    doc[f"campaign_grid_1024_shards{k}"] = json.load(
        open(f"{tmp}/campaign_grid_1024_shards{k}.json"))
    doc[f"campaign_grid_1024_mincut_shards{k}"] = json.load(
        open(f"{tmp}/campaign_grid_1024_mincut_shards{k}.json"))
with open(out, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
print(f"wrote {out}")
EOF
