#!/usr/bin/env python3
"""Diffs two BENCH_radio.json perf-trajectory points.

For every google-benchmark entry present in both files, prints the
old/new items-per-second (falling back to inverse wall time when a bench
reports no item counter) and the speedup ratio new/old; for the campaign
probes, compares events-per-second. Sharded probes additionally get an
informational shard.stall_us / shard.mirrored_frames sync-cost diff, and
probes run with --profile a sim-profiler bucket diff (queue/radio/agent/
shard-sync/other wall seconds) -- never part of the gate.

Usage: tools/bench_compare.py OLD.json NEW.json [--min-ratio R] [--fail-below R]
  --min-ratio R   print a trailing WARNING line listing benches whose
                  ratio fell below R (still exit 0)
  --fail-below R  GATE: exit 1 when any campaign events-per-second probe's
                  new/old ratio drops below R. Only the campaign probes
                  gate -- microbenchmarks are too noisy on shared CI
                  runners to fail the build on. Set BENCH_ALLOW_REGRESSION=1
                  to downgrade the gate to a warning (exit 0), e.g. when a
                  PR knowingly trades throughput for correctness.
"""

import argparse
import json
import os
import sys


def bench_rates(doc):
    """Flattens one BENCH json into {bench_name: items_per_second}."""
    rates = {}
    for section, payload in doc.items():
        if not isinstance(payload, dict):
            continue
        if "benchmarks" in payload:  # google-benchmark output
            for bench in payload["benchmarks"]:
                if bench.get("run_type") == "aggregate":
                    continue
                name = f"{section}/{bench['name']}"
                if "items_per_second" in bench:
                    rates[name] = bench["items_per_second"]
                elif bench.get("real_time", 0) > 0:
                    # Convert to a rate so "bigger is better" holds uniformly.
                    scale = {"ns": 1e9, "us": 1e6, "ms": 1e3, "s": 1.0}.get(
                        bench.get("time_unit", "ns"), 1e9)
                    rates[name] = scale / bench["real_time"]
        elif "events_per_second" in payload:  # campaign perf probe
            rates[f"{section}/events_per_second"] = payload["events_per_second"]
    return rates


def profile_buckets(doc):
    """Flattens profiled campaign probes into {section/bucket: seconds}.

    Probes run with --profile carry a top-level "profile" object of
    wall-clock bucket totals (see CampaignPerfJson); unprofiled probes
    simply have no entry here.
    """
    buckets = {}
    for section, payload in doc.items():
        if not isinstance(payload, dict):
            continue
        for key, seconds in payload.get("profile", {}).items():
            buckets[f"{section}/{key}"] = seconds
    return buckets


def queue_splits(doc):
    """Flattens campaign probes into {section: (absorbed, spilled, rate)}.

    Campaign perf probes carry a top-level "queue" object with the
    timer-wheel tier split (see CampaignPerfJson); older baselines and
    microbench sections simply have no entry here.
    """
    splits = {}
    for section, payload in doc.items():
        if not isinstance(payload, dict):
            continue
        q = payload.get("queue")
        if isinstance(q, dict) and "wheel_absorb_rate" in q:
            splits[section] = (q.get("wheel_absorbed", 0.0),
                               q.get("wheel_spilled", 0.0),
                               q["wheel_absorb_rate"])
    return splits


def print_queue_diff(old_doc, new_doc):
    """Informational (never gating) diff of the queue.wheel.* tier split."""
    old_q = queue_splits(old_doc)
    new_q = queue_splits(new_doc)
    names = sorted(set(old_q) | set(new_q))
    if not names:
        return
    print(f"\nqueue.wheel.* tier split (informational, absorb rate):")
    print(f"{'probe':<72} {'old rate':>12} {'new rate':>12}")
    for name in names:
        def fmt(entry):
            if entry is None:
                return "-"
            absorbed, spilled, rate = entry
            return f"{rate:.4f}"
        print(f"{name:<72} {fmt(old_q.get(name)):>12} {fmt(new_q.get(name)):>12}")
        if name in new_q:
            absorbed, spilled, _ = new_q[name]
            print(f"  new absorbed={absorbed:.0f} spilled={spilled:.0f}")


def shard_splits(doc):
    """Flattens campaign probes into {section: shard-sync dict}.

    Sharded campaign perf probes carry a top-level "shard" object with the
    null-message sync costs (see CampaignPerfJson): stall_us/stall_episodes
    are wall-clock time shards spent parked on their neighbors' EPT
    promises, mirrored_frames counts cross-shard announce copies. Older
    baselines and sequential probes simply have no entry here (or an
    all-zero one, which reads the same).
    """
    splits = {}
    for section, payload in doc.items():
        if not isinstance(payload, dict):
            continue
        s = payload.get("shard")
        if isinstance(s, dict) and "stall_us" in s:
            splits[section] = s
    return splits


def print_shard_diff(old_doc, new_doc):
    """Informational (never gating) diff of the shard.* sync costs."""
    old_s = shard_splits(old_doc)
    new_s = shard_splits(new_doc)
    # Probes where both sides never sharded (all-zero rows) are noise.
    def active(entry):
        return entry is not None and any(entry.get(k, 0) for k in
                                         ("stall_us", "stall_episodes",
                                          "mirrored_frames"))
    names = sorted(n for n in set(old_s) | set(new_s)
                   if active(old_s.get(n)) or active(new_s.get(n)))
    if not names:
        return
    print(f"\nshard sync costs (informational; stall is wall-clock, noisy):")
    print(f"{'probe':<56} {'old stall ms':>13} {'new stall ms':>13} "
          f"{'old mirr':>10} {'new mirr':>10}")
    for name in names:
        def fmt(entry, key, scale=1.0):
            if entry is None or key not in entry:
                return "-"
            return f"{entry[key] * scale:.1f}"
        print(f"{name:<56} {fmt(old_s.get(name), 'stall_us', 1e-3):>13} "
              f"{fmt(new_s.get(name), 'stall_us', 1e-3):>13} "
              f"{fmt(old_s.get(name), 'mirrored_frames'):>10} "
              f"{fmt(new_s.get(name), 'mirrored_frames'):>10}")


def print_profile_diff(old_doc, new_doc):
    """Informational (never gating) diff of the sim-profiler buckets."""
    old_prof = profile_buckets(old_doc)
    new_prof = profile_buckets(new_doc)
    names = sorted(set(old_prof) | set(new_prof))
    if not names:
        return
    print(f"\nprofiler buckets (informational, wall seconds):")
    print(f"{'bucket':<72} {'old s':>12} {'new s':>12} {'ratio':>7}")
    for name in names:
        old_s = old_prof.get(name)
        new_s = new_prof.get(name)
        old_text = f"{old_s:.3f}" if old_s is not None else "-"
        new_text = f"{new_s:.3f}" if new_s is not None else "-"
        if old_s and new_s is not None:
            ratio = f"{new_s / old_s:>6.2f}x"
        else:
            ratio = f"{'-':>7}"
        print(f"{name:<72} {old_text:>12} {new_text:>12} {ratio}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", help="baseline BENCH json (e.g. checked-in BENCH_radio.json)")
    parser.add_argument("new", help="fresh BENCH json to compare against the baseline")
    parser.add_argument("--min-ratio", type=float, default=None,
                        help="warn (exit 0) when a bench's new/old ratio drops below this")
    parser.add_argument("--fail-below", type=float, default=None,
                        help="exit 1 when a campaign events-per-second probe's "
                             "ratio drops below this (BENCH_ALLOW_REGRESSION=1 "
                             "downgrades to a warning)")
    args = parser.parse_args()

    with open(args.old) as f:
        old_doc = json.load(f)
    with open(args.new) as f:
        new_doc = json.load(f)

    old_rates = bench_rates(old_doc)
    new_rates = bench_rates(new_doc)
    common = sorted(set(old_rates) & set(new_rates))
    if not common:
        print("no common benchmarks between the two files")
        return 0

    print(f"{'benchmark':<72} {'old/s':>12} {'new/s':>12} {'ratio':>7}")
    slow = []
    gate_failures = []
    for name in common:
        old_rate, new_rate = old_rates[name], new_rates[name]
        ratio = new_rate / old_rate if old_rate > 0 else float("inf")
        print(f"{name:<72} {old_rate:>12.3g} {new_rate:>12.3g} {ratio:>6.2f}x")
        if args.min_ratio is not None and ratio < args.min_ratio:
            slow.append((name, ratio))
        if (args.fail_below is not None and name.endswith("/events_per_second")
                and ratio < args.fail_below):
            gate_failures.append((name, ratio))

    print_queue_diff(old_doc, new_doc)
    print_shard_diff(old_doc, new_doc)
    print_profile_diff(old_doc, new_doc)

    only_old = sorted(set(old_rates) - set(new_rates))
    only_new = sorted(set(new_rates) - set(old_rates))
    if only_old:
        print(f"\n{len(only_old)} bench(es) only in {args.old} (first: {only_old[0]})")
    if only_new:
        print(f"{len(only_new)} bench(es) only in {args.new} (first: {only_new[0]})")
    if slow:
        names = ", ".join(f"{n} ({r:.2f}x)" for n, r in slow)
        print(f"\nWARNING: below --min-ratio {args.min_ratio}: {names}")
    if gate_failures:
        names = ", ".join(f"{n} ({r:.2f}x)" for n, r in gate_failures)
        if os.environ.get("BENCH_ALLOW_REGRESSION"):
            print(f"\nWARNING (gate waived by BENCH_ALLOW_REGRESSION): "
                  f"below --fail-below {args.fail_below}: {names}")
        else:
            print(f"\nFAIL: events-per-second regression beyond --fail-below "
                  f"{args.fail_below}: {names}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
