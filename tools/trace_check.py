#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON written by --trace-out.

Checks (stdlib only, no Perfetto needed in CI):
  - the file parses as JSON with a "traceEvents" list
  - every event has name/cat/ph/ts/pid/tid; "X" events carry dur >= 0,
    "i" events a scope; no other phases are emitted by the simulator
  - timestamps and durations are non-negative (sim time starts at 0)
  - "X" spans nest properly within each (pid, tid) track: two spans on
    one track either don't intersect or one contains the other, which is
    what makes them render as a flame graph instead of garbage. Spans in
    the "query" category are exempt: they are issue-to-close lifetimes of
    concurrent async operations, emitted retroactively at close, and under
    faults (timeouts, re-issues) a query legitimately outlives the issue
    interval and overlaps its neighbours -- the Chrome format would model
    them as async b/e events, which the simulator's minimal X/i vocabulary
    does not emit
  - "fault"-category events are well-shaped instants: phase "i" and a
    name from the fault vocabulary -- either an injected fault.* instant
    (fault.crash, fault.reboot, ..., which must carry an args.kind
    discriminant) or a graceful-degradation marker (data.orphaned,
    data.rehomed, query.reissue, route.parent_lost)
  - (--require-cat) each named category occurs at least once, e.g.
      tools/trace_check.py t.json --require-cat packet query shard-sync

Prints a per-category event summary; exits 1 on any violation.
"""

import argparse
import collections
import json
import sys


def load_events(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise ValueError("top level must be an object with a traceEvents list")
    return doc


# Injected-fault instant vocabulary (src/harness/experiment.cc,
# FaultInstantName); each carries an args.kind discriminant.
FAULT_INJECT_NAMES = frozenset({
    "fault.crash", "fault.reboot", "fault.radio_up", "fault.promote",
    "fault.demote", "fault.link_down", "fault.partition",
})
# Graceful-degradation markers emitted by the agents on the same category
# (src/core/agent_base.cc); no kind discriminant.
FAULT_DEGRADE_NAMES = frozenset({
    "data.orphaned", "data.rehomed", "query.reissue", "route.parent_lost",
})


def check_events(events):
    """Yields error strings for malformed events."""
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            yield f"{where}: not an object"
            continue
        for field in ("name", "cat", "ph", "ts", "pid", "tid"):
            if field not in e:
                yield f"{where}: missing '{field}'"
        ph = e.get("ph")
        if ph not in ("X", "i"):
            yield f"{where}: unexpected phase {ph!r} (simulator emits only X and i)"
        if ph == "X" and e.get("dur", -1) < 0:
            yield f"{where}: X span without a non-negative dur"
        if ph == "i" and "s" not in e:
            yield f"{where}: instant without a scope"
        if e.get("ts", 0) < 0:
            yield f"{where}: negative ts {e.get('ts')}"
        if e.get("cat") == "fault":
            if ph != "i":
                yield f"{where}: fault event with phase {ph!r} (must be an instant)"
            name = e.get("name")
            if name in FAULT_INJECT_NAMES:
                kind = e.get("args", {}).get("kind")
                if not isinstance(kind, int) or kind < 0:
                    yield f"{where}: fault instant without an integer args.kind"
            elif name not in FAULT_DEGRADE_NAMES:
                yield f"{where}: unknown fault instant name {name!r}"


def check_nesting(events):
    """Yields error strings for partially-overlapping spans on one track."""
    tracks = collections.defaultdict(list)
    for e in events:
        if isinstance(e, dict) and e.get("ph") == "X" and e.get("cat") != "query":
            start = e.get("ts", 0)
            tracks[(e.get("pid"), e.get("tid"))].append(
                (start, start + max(e.get("dur", 0), 0), e.get("name")))
    for track, spans in sorted(tracks.items()):
        # Sweep in start order, outermost (longest) first at equal starts;
        # a span starting inside the enclosing span but ending outside it
        # is a partial overlap the viewer cannot nest.
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack = []
        for start, end, name in spans:
            while stack and stack[-1][1] <= start:
                stack.pop()
            if stack and end > stack[-1][1]:
                yield (f"track pid={track[0]} tid={track[1]}: span "
                       f"'{name}' [{start}, {end}) partially overlaps "
                       f"'{stack[-1][2]}' [{stack[-1][0]}, {stack[-1][1]})")
                continue  # Don't push; report each overlap once.
            stack.append((start, end, name))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON (--trace-out output)")
    parser.add_argument("--require-cat", nargs="+", default=[], metavar="CAT",
                        help="categories that must each appear at least once")
    parser.add_argument("--max-errors", type=int, default=20,
                        help="stop printing after this many violations")
    args = parser.parse_args()

    try:
        doc = load_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"FAIL: {args.trace}: {err}", file=sys.stderr)
        return 1
    events = doc["traceEvents"]

    errors = []
    for err in check_events(events):
        errors.append(err)
        if len(errors) >= args.max_errors:
            break
    if not errors:  # Nesting only makes sense on well-formed events.
        for err in check_nesting(events):
            errors.append(err)
            if len(errors) >= args.max_errors:
                break

    by_cat = collections.Counter()
    spans_by_cat = collections.Counter()
    for e in events:
        if isinstance(e, dict):
            by_cat[e.get("cat", "?")] += 1
            if e.get("ph") == "X":
                spans_by_cat[e.get("cat", "?")] += 1
    print(f"{args.trace}: {len(events)} events on "
          f"{len({(e.get('pid'), e.get('tid')) for e in events if isinstance(e, dict)})} tracks")
    for cat in sorted(by_cat):
        print(f"  {cat:<12} {by_cat[cat]:>8} events ({spans_by_cat[cat]} spans)")
    dropped = doc.get("otherData", {}).get("dropped", 0)
    if dropped:
        print(f"  note: {dropped} events dropped at the sink cap")

    for cat in args.require_cat:
        if by_cat.get(cat, 0) == 0:
            errors.append(f"required category '{cat}' has no events")

    if errors:
        for err in errors:
            print(f"FAIL: {err}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
