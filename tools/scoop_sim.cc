// scoop_sim: command-line experiment runner.
//
//   scoop_sim [--policy=scoop|local|base|hash|hash-sim]
//             [--source=real|unique|equal|random|gaussian]
//             [--nodes=N] [--minutes=M] [--stabilization-minutes=M]
//             [--sample-interval=S] [--summary-interval=S] [--remap-interval=S]
//             [--query-interval=S] [--query-mode=range|node-list]
//             [--query-width-lo=F] [--query-width-hi=F]
//             [--node-list-fraction=F] [--history-window-seconds=S]
//             [--topology=testbed|random|grid] [--trials=K] [--seed=S]
//             [--batch=N] [--no-shortcut] [--no-descendants]
//             [--owner-set=K] [--range-granularity=G]
//             [--failure-fraction=F] [--failure-minute=M]
//             [--trace-out=PATH] [--metrics-out=PATH] [--metrics-interval=S]
//             [--profile] [-v|-vv]
//
// Prints the message breakdown and success metrics for the configured run.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "scenario/scenario_parser.h"

#include "cli_flags.h"

namespace {

using namespace scoop;

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--policy=scoop|local|base|hash|hash-sim]\n"
               "          [--source=real|unique|equal|random|gaussian]\n"
               "          [--nodes=N] [--minutes=M] [--stabilization-minutes=M]\n"
               "          [--sample-interval=S] [--summary-interval=S] [--remap-interval=S]\n"
               "          [--query-interval=S] [--query-mode=range|node-list]\n"
               "          [--query-width-lo=F] [--query-width-hi=F]\n"
               "          [--node-list-fraction=F] [--history-window-seconds=S]\n"
               "          [--topology=testbed|random|grid] [--trials=K] [--seed=S]\n"
               "          [--shards=K]  1 = sequential engine, >=2 = K-way sharded\n"
               "                        parallel engine, 0 = one shard per core\n"
               "          [--queue=wheel|heap]  event queue impl (default wheel;\n"
               "                        results are identical, wheel is faster)\n"
               "          [--partition=strip|mincut]  shard partitioner (default strip;\n"
               "                        results are identical, mincut stalls less)\n"
               "          [--batch=N] [--no-shortcut] [--no-descendants]\n"
               "          [--owner-set=K] [--range-granularity=G]\n"
               "          [--failure-fraction=F] [--failure-minute=M]\n"
               "          [--trace-out=PATH]    write a Chrome-trace JSON per trial\n"
               "          [--metrics-out=PATH]  write sampled metrics JSONL per trial\n"
               "          [--metrics-interval=S] metrics sampling grid (sim seconds)\n"
               "          [--profile]           attach the wall-clock sim profiler\n"
               "          [-v | -vv]            info / debug logging to stderr\n",
               argv0);
  std::exit(2);
}

using scoop::tools::MatchFlag;

/// Routes the enum-valued flags through the scenario key table, so the CLI
/// and .scn files share one name-to-enum mapping (and one rejection path
/// for unknown values).
void ApplyKeyOrUsage(harness::ExperimentConfig* config, const char* key, const char* value,
                     const char* argv0) {
  scoop::Status s = scenario::ApplyScenarioKey(config, key, value);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    Usage(argv0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  harness::ExperimentConfig config;
  int verbosity = 0;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    const char* arg = argv[i];
    if (MatchFlag(arg, "--policy", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "policy", value, argv[0]);
    } else if (MatchFlag(arg, "--source", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "source", value, argv[0]);
    } else if (MatchFlag(arg, "--nodes", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "nodes", value, argv[0]);
    } else if (MatchFlag(arg, "--shards", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "shards", value, argv[0]);
    } else if (MatchFlag(arg, "--queue", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "queue", value, argv[0]);
    } else if (MatchFlag(arg, "--partition", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "partition", value, argv[0]);
    } else if (MatchFlag(arg, "--minutes", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "duration_minutes", value, argv[0]);
    } else if (MatchFlag(arg, "--stabilization-minutes", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "stabilization_minutes", value, argv[0]);
    } else if (MatchFlag(arg, "--sample-interval", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "sample_interval_seconds", value, argv[0]);
    } else if (MatchFlag(arg, "--summary-interval", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "summary_interval_seconds", value, argv[0]);
    } else if (MatchFlag(arg, "--remap-interval", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "remap_interval_seconds", value, argv[0]);
    } else if (MatchFlag(arg, "--query-interval", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "query_interval_seconds", value, argv[0]);
    } else if (MatchFlag(arg, "--query-mode", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "query_mode", value, argv[0]);
    } else if (MatchFlag(arg, "--query-width-lo", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "query_width_lo", value, argv[0]);
    } else if (MatchFlag(arg, "--query-width-hi", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "query_width_hi", value, argv[0]);
    } else if (MatchFlag(arg, "--node-list-fraction", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "node_list_fraction", value, argv[0]);
    } else if (MatchFlag(arg, "--history-window-seconds", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "history_window_seconds", value, argv[0]);
    } else if (MatchFlag(arg, "--topology", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "topology", value, argv[0]);
    } else if (MatchFlag(arg, "--trials", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "trials", value, argv[0]);
    } else if (MatchFlag(arg, "--seed", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "seed", value, argv[0]);
    } else if (MatchFlag(arg, "--batch", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "max_batch", value, argv[0]);
    } else if (MatchFlag(arg, "--no-shortcut", &value)) {
      config.enable_neighbor_shortcut = false;
    } else if (MatchFlag(arg, "--no-descendants", &value)) {
      config.enable_descendant_routing = false;
    } else if (MatchFlag(arg, "--owner-set", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "owner_set", value, argv[0]);
    } else if (MatchFlag(arg, "--range-granularity", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "range_granularity", value, argv[0]);
    } else if (MatchFlag(arg, "--failure-fraction", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "failure_fraction", value, argv[0]);
    } else if (MatchFlag(arg, "--failure-minute", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "failure_minute", value, argv[0]);
    } else if (MatchFlag(arg, "--trace-out", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "obs.trace_out", value, argv[0]);
    } else if (MatchFlag(arg, "--metrics-out", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "obs.metrics_out", value, argv[0]);
    } else if (MatchFlag(arg, "--metrics-interval", &value) && value != nullptr) {
      ApplyKeyOrUsage(&config, "obs.metrics_interval_seconds", value, argv[0]);
    } else if (MatchFlag(arg, "--profile", &value)) {
      config.profile = true;
    } else if (std::strcmp(arg, "-v") == 0) {
      verbosity = 1;
    } else if (std::strcmp(arg, "-vv") == 0) {
      verbosity = 2;
    } else {
      Usage(argv[0]);
    }
  }
  SetLogLevel(LogLevelForVerbosity(verbosity));

  harness::ExperimentResult r = harness::RunExperiment(config);

  std::printf("policy=%s source=%s nodes=%d minutes=%.0f trials=%d seed=%llu\n\n",
              harness::PolicyName(config.policy),
              workload::DataSourceKindName(config.source), config.num_nodes,
              ToSeconds(config.duration) / 60, config.trials,
              static_cast<unsigned long long>(config.seed));

  harness::TablePrinter messages({"data", "summary", "mapping", "query", "reply",
                                  "total(excl beacons)", "retx"});
  messages.AddRow(
      {harness::FormatCount(r.data()), harness::FormatCount(r.summary()),
       harness::FormatCount(r.mapping()),
       harness::FormatCount(r.sent_by_type[static_cast<size_t>(PacketType::kQuery)]),
       harness::FormatCount(r.sent_by_type[static_cast<size_t>(PacketType::kReply)]),
       harness::FormatCount(r.total_excl_beacons),
       harness::FormatCount(r.retransmissions)});
  messages.Print();

  std::printf("\n");
  harness::TablePrinter health({"stored", "owner-hit", "q-success", "summaries@base",
                                "%nodes-queried", "indices(diss/supp)"});
  health.AddRow({harness::FormatPercent(r.storage_success),
                 harness::FormatPercent(r.owner_hit_rate),
                 harness::FormatPercent(r.query_success),
                 harness::FormatPercent(r.summary_delivery),
                 harness::FormatPercent(r.avg_pct_nodes_queried),
                 harness::FormatCount(r.indices_disseminated) + "/" +
                     harness::FormatCount(r.indices_suppressed)});
  health.Print();

  if (config.profile) {
    std::printf("\n");
    harness::TablePrinter prof({"bucket", "wall-seconds"});
    const struct {
      const char* name;
      double seconds;
    } buckets[] = {
        {"queue", r.profile_queue_seconds},       {"radio", r.profile_radio_seconds},
        {"agent", r.profile_agent_seconds},       {"shard-sync", r.profile_shard_sync_seconds},
        {"other", r.profile_other_seconds},
    };
    char cell[32];
    for (const auto& b : buckets) {
      std::snprintf(cell, sizeof(cell), "%.3f", b.seconds);
      prof.AddRow({b.name, cell});
    }
    prof.Print();
  }
  return 0;
}
