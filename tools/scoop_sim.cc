// scoop_sim: command-line experiment runner.
//
//   scoop_sim [--policy=scoop|local|base|hash|hash-sim]
//             [--source=real|unique|equal|random|gaussian]
//             [--nodes=N] [--minutes=M] [--stabilization-minutes=M]
//             [--sample-interval=S] [--query-interval=S]
//             [--query-width-lo=F] [--query-width-hi=F]
//             [--topology=testbed|random] [--trials=K] [--seed=S]
//             [--batch=N] [--no-shortcut] [--no-descendants]
//             [--owner-set=K] [--range-granularity=G]
//             [--failure-fraction=F] [--failure-minute=M]
//
// Prints the message breakdown and success metrics for the configured run.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/experiment.h"
#include "harness/report.h"

namespace {

using namespace scoop;

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--policy=scoop|local|base|hash|hash-sim]\n"
               "          [--source=real|unique|equal|random|gaussian]\n"
               "          [--nodes=N] [--minutes=M] [--stabilization-minutes=M]\n"
               "          [--sample-interval=S] [--query-interval=S]\n"
               "          [--query-width-lo=F] [--query-width-hi=F]\n"
               "          [--topology=testbed|random] [--trials=K] [--seed=S]\n"
               "          [--batch=N] [--no-shortcut] [--no-descendants]\n"
               "          [--owner-set=K] [--range-granularity=G]\n"
               "          [--failure-fraction=F] [--failure-minute=M]\n",
               argv0);
  std::exit(2);
}

bool MatchFlag(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

harness::Policy ParsePolicy(const std::string& name, const char* argv0) {
  if (name == "scoop") return harness::Policy::kScoop;
  if (name == "local") return harness::Policy::kLocal;
  if (name == "base") return harness::Policy::kBase;
  if (name == "hash") return harness::Policy::kHashAnalytical;
  if (name == "hash-sim") return harness::Policy::kHashSim;
  std::fprintf(stderr, "unknown policy '%s'\n", name.c_str());
  Usage(argv0);
}

workload::DataSourceKind ParseSource(const std::string& name, const char* argv0) {
  if (name == "real") return workload::DataSourceKind::kReal;
  if (name == "unique") return workload::DataSourceKind::kUnique;
  if (name == "equal") return workload::DataSourceKind::kEqual;
  if (name == "random") return workload::DataSourceKind::kRandom;
  if (name == "gaussian") return workload::DataSourceKind::kGaussian;
  std::fprintf(stderr, "unknown source '%s'\n", name.c_str());
  Usage(argv0);
}

}  // namespace

int main(int argc, char** argv) {
  harness::ExperimentConfig config;
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    const char* arg = argv[i];
    if (MatchFlag(arg, "--policy", &value) && value != nullptr) {
      config.policy = ParsePolicy(value, argv[0]);
    } else if (MatchFlag(arg, "--source", &value) && value != nullptr) {
      config.source = ParseSource(value, argv[0]);
    } else if (MatchFlag(arg, "--nodes", &value) && value != nullptr) {
      config.num_nodes = std::atoi(value);
    } else if (MatchFlag(arg, "--minutes", &value) && value != nullptr) {
      config.duration = Minutes(std::atoi(value));
    } else if (MatchFlag(arg, "--stabilization-minutes", &value) && value != nullptr) {
      config.stabilization = Minutes(std::atoi(value));
    } else if (MatchFlag(arg, "--sample-interval", &value) && value != nullptr) {
      config.sample_interval = Seconds(std::atof(value));
    } else if (MatchFlag(arg, "--query-interval", &value) && value != nullptr) {
      config.query_interval = Seconds(std::atof(value));
    } else if (MatchFlag(arg, "--query-width-lo", &value) && value != nullptr) {
      config.query_width_lo = std::atof(value);
    } else if (MatchFlag(arg, "--query-width-hi", &value) && value != nullptr) {
      config.query_width_hi = std::atof(value);
    } else if (MatchFlag(arg, "--topology", &value) && value != nullptr) {
      config.preset = std::string(value) == "testbed" ? harness::TopologyPreset::kTestbed
                                                      : harness::TopologyPreset::kRandom;
    } else if (MatchFlag(arg, "--trials", &value) && value != nullptr) {
      config.trials = std::atoi(value);
    } else if (MatchFlag(arg, "--seed", &value) && value != nullptr) {
      config.seed = static_cast<uint64_t>(std::atoll(value));
    } else if (MatchFlag(arg, "--batch", &value) && value != nullptr) {
      config.max_batch = std::atoi(value);
    } else if (MatchFlag(arg, "--no-shortcut", &value)) {
      config.enable_neighbor_shortcut = false;
    } else if (MatchFlag(arg, "--no-descendants", &value)) {
      config.enable_descendant_routing = false;
    } else if (MatchFlag(arg, "--owner-set", &value) && value != nullptr) {
      config.builder.owner_set_size = std::atoi(value);
    } else if (MatchFlag(arg, "--range-granularity", &value) && value != nullptr) {
      config.builder.range_granularity = std::atoi(value);
    } else if (MatchFlag(arg, "--failure-fraction", &value) && value != nullptr) {
      config.node_failure_fraction = std::atof(value);
    } else if (MatchFlag(arg, "--failure-minute", &value) && value != nullptr) {
      config.failure_time = Minutes(std::atoi(value));
    } else {
      Usage(argv[0]);
    }
  }

  harness::ExperimentResult r = harness::RunExperiment(config);

  std::printf("policy=%s source=%s nodes=%d minutes=%.0f trials=%d seed=%llu\n\n",
              harness::PolicyName(config.policy),
              workload::DataSourceKindName(config.source), config.num_nodes,
              ToSeconds(config.duration) / 60, config.trials,
              static_cast<unsigned long long>(config.seed));

  harness::TablePrinter messages({"data", "summary", "mapping", "query", "reply",
                                  "total(excl beacons)", "retx"});
  messages.AddRow(
      {harness::FormatCount(r.data()), harness::FormatCount(r.summary()),
       harness::FormatCount(r.mapping()),
       harness::FormatCount(r.sent_by_type[static_cast<size_t>(PacketType::kQuery)]),
       harness::FormatCount(r.sent_by_type[static_cast<size_t>(PacketType::kReply)]),
       harness::FormatCount(r.total_excl_beacons),
       harness::FormatCount(r.retransmissions)});
  messages.Print();

  std::printf("\n");
  harness::TablePrinter health({"stored", "owner-hit", "q-success", "summaries@base",
                                "%nodes-queried", "indices(diss/supp)"});
  health.AddRow({harness::FormatPercent(r.storage_success),
                 harness::FormatPercent(r.owner_hit_rate),
                 harness::FormatPercent(r.query_success),
                 harness::FormatPercent(r.summary_delivery),
                 harness::FormatPercent(r.avg_pct_nodes_queried),
                 harness::FormatCount(r.indices_disseminated) + "/" +
                     harness::FormatCount(r.indices_suppressed)});
  health.Print();
  return 0;
}
