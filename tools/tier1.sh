#!/usr/bin/env bash
# Tier-1 verify: configure + build (warnings as errors) + full ctest suite.
# Usage: tools/tier1.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-build}"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

cmake -B "${repo_root}/${build_dir}" -S "${repo_root}"
cmake --build "${repo_root}/${build_dir}" -j "${jobs}"
ctest --test-dir "${repo_root}/${build_dir}" --output-on-failure -j "${jobs}"
