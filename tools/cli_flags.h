// Tiny shared helper for the tools' --flag / --flag=value parsing.
#ifndef SCOOP_TOOLS_CLI_FLAGS_H_
#define SCOOP_TOOLS_CLI_FLAGS_H_

#include <cstring>

namespace scoop::tools {

/// Matches `arg` against `--name` (then *value = nullptr) or `--name=...`
/// (then *value points at the text after '='). Returns false otherwise.
inline bool MatchFlag(const char* arg, const char* name, const char** value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace scoop::tools

#endif  // SCOOP_TOOLS_CLI_FLAGS_H_
